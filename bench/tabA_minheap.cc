/**
 * @file
 * Minimum-heap determination (methodology recommendation H2 and the
 * GMD/GMS/GML/GMU statistics): bisect the smallest heap in which each
 * workload completes, per collector, and compare the G1 result with
 * the shipped GMD.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "harness/minheap.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

int
runTabAMinheap(report::ExperimentContext &context)
{
    auto options = context.options;

    auto &minheap = context.store.table(
        "minheap",
        report::Schema{{"workload", report::Type::String},
                       {"collector", report::Type::String},
                       {"converged", report::Type::Bool},
                       {"min_heap_mb", report::Type::Double}});

    std::vector<std::string> header = {"workload", "GMD (shipped)"};
    for (auto algorithm : gc::productionCollectors())
        header.push_back(gc::algorithmName(algorithm));
    header.push_back("ZGC*/G1");
    bench::AsciiTable table(header);

    std::vector<std::string> selection = context.flags.positionals();
    if (selection.empty())
        selection = workloads::names();

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        std::cerr << "  bisecting " << name << "...\n";
        std::vector<std::string> row = {
            name, support::fixed(workload.gc.gmd_mb, 0) + " MB"};
        double g1 = 0.0, zgc = 0.0;
        for (auto algorithm : gc::productionCollectors()) {
            const auto found =
                harness::findMinHeapMb(workload, algorithm, options);
            row.push_back(found.converged
                              ? support::fixed(found.min_heap_mb, 1)
                              : "?");
            minheap.addRow(
                {report::Value::str(name),
                 report::Value::str(gc::algorithmName(algorithm)),
                 report::Value::boolean(found.converged),
                 report::Value::dbl(found.min_heap_mb)});
            if (algorithm == gc::Algorithm::G1)
                g1 = found.min_heap_mb;
            if (algorithm == gc::Algorithm::Zgc)
                zgc = found.min_heap_mb;
        }
        row.push_back(g1 > 0.0 ? support::fixed(zgc / g1, 2) : "-");
        table.row(row);
    }
    table.render(std::cout);
    std::cout << "\nZGC runs without compressed pointers, so its "
                 "minimum heap exceeds G1's\nby roughly the workload's "
                 "GMU/GMD ratio.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "tabA_minheap";
    e.title = "Minimum heap sizes by collector";
    e.paper_ref = "Section 4.2 / the GMD statistic";
    e.description =
        "Minimum heap per workload and collector (bisection)";
    e.quick_invocations = 1;
    e.quick_iterations = 2;
    e.run = runTabAMinheap;
    return e;
}()};

} // namespace
