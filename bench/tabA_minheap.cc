/**
 * @file
 * Minimum-heap determination (methodology recommendation H2 and the
 * GMD/GMS/GML/GMU statistics): bisect the smallest heap in which each
 * workload completes, per collector, and compare the G1 result with
 * the shipped GMD.
 */

#include "bench/bench_common.hh"
#include "harness/minheap.hh"
#include "workloads/registry.hh"

using namespace capo;

int
main(int argc, char **argv)
{
    auto flags = bench::standardFlags(
        "Minimum heap per workload and collector (bisection)");
    flags.parse(argc, argv);

    bench::banner("Minimum heap sizes by collector",
                  "Section 4.2 / the GMD statistic");

    auto options = bench::optionsFromFlags(flags, 1, 2);

    support::TextTable table;
    std::vector<std::string> header = {"workload", "GMD (shipped)"};
    for (auto algorithm : gc::productionCollectors())
        header.push_back(gc::algorithmName(algorithm));
    header.push_back("ZGC*/G1");
    std::vector<support::TextTable::Align> aligns(
        header.size(), support::TextTable::Align::Right);
    aligns[0] = support::TextTable::Align::Left;
    table.columns(header, aligns);

    std::vector<std::string> selection = flags.positionals();
    if (selection.empty())
        selection = workloads::names();

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        std::cerr << "  bisecting " << name << "...\n";
        std::vector<std::string> row = {
            name, support::fixed(workload.gc.gmd_mb, 0) + " MB"};
        double g1 = 0.0, zgc = 0.0;
        for (auto algorithm : gc::productionCollectors()) {
            const auto found =
                harness::findMinHeapMb(workload, algorithm, options);
            row.push_back(found.converged
                              ? support::fixed(found.min_heap_mb, 1)
                              : "?");
            if (algorithm == gc::Algorithm::G1)
                g1 = found.min_heap_mb;
            if (algorithm == gc::Algorithm::Zgc)
                zgc = found.min_heap_mb;
        }
        row.push_back(g1 > 0.0 ? support::fixed(zgc / g1, 2) : "-");
        table.row(row);
    }
    table.render(std::cout);
    std::cout << "\nZGC runs without compressed pointers, so its "
                 "minimum heap exceeds G1's\nby roughly the workload's "
                 "GMU/GMD ratio.\n";
    return 0;
}
