/**
 * @file
 * Microbenchmarks of the framework itself (google-benchmark): the
 * paper stresses that recording latency events must be cheap and that
 * characterization is computationally non-trivial; these benchmarks
 * quantify the cost of capo's hot paths.
 */

#include <benchmark/benchmark.h>

#include "gc/factory.hh"
#include "metrics/latency.hh"
#include "metrics/mmu.hh"
#include "metrics/request_synth.hh"
#include "runtime/execution.hh"
#include "sim/engine.hh"
#include "stats/pca.hh"
#include "support/arena.hh"
#include "support/rng.hh"

namespace {

using namespace capo;

/** Cost of recording one latency event (the "careful engineering
 *  ensures that the cost of recording these measurements is low"
 *  claim). */
void
BM_LatencyRecord(benchmark::State &state)
{
    metrics::LatencyRecorder rec;
    rec.reserve(1 << 20);
    double t = 0.0;
    for (auto _ : state) {
        rec.record(t, t + 1.0);
        t += 1.0;
        benchmark::DoNotOptimize(rec.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyRecord);

/** Metered-latency transform over n events. */
void
BM_MeteredLatency(benchmark::State &state)
{
    const auto n = static_cast<int>(state.range(0));
    support::Rng rng(1);
    metrics::LatencyRecorder rec;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        t += rng.exponential(1000.0);
        rec.record(t, t + rng.exponential(500.0));
    }
    for (auto _ : state) {
        auto metered = rec.meteredLatencies(100e6);
        benchmark::DoNotOptimize(metered.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MeteredLatency)->Arg(1000)->Arg(10000)->Arg(100000);

/** MMU queries over a large pause log. */
void
BM_MmuQuery(benchmark::State &state)
{
    support::Rng rng(2);
    std::vector<std::pair<double, double>> pauses;
    double t = 0.0;
    for (int i = 0; i < 10000; ++i) {
        t += rng.exponential(1e6);
        const double end = t + rng.exponential(1e5);
        pauses.emplace_back(t, end);
        t = end;
    }
    metrics::Mmu mmu(pauses, 0.0, t + 1e6);
    double window = 1e3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mmu.at(window));
        window = window < 1e9 ? window * 1.5 : 1e3;
    }
}
BENCHMARK(BM_MmuQuery);

/** Discrete-event engine throughput (events per second). */
void
BM_EngineEvents(benchmark::State &state)
{
    class Churn : public sim::Agent
    {
      public:
        std::string_view name() const override { return "churn"; }
        sim::Action
        resume(sim::Engine &) override
        {
            return sim::Action::compute(10.0, 1.0 + step_++ % 3);
        }

      private:
        int step_ = 0;
    };

    for (auto _ : state) {
        sim::Engine engine(8.0);
        std::vector<Churn> agents(8);
        for (auto &agent : agents)
            engine.addAgent(&agent);
        engine.run(1e5);
        benchmark::DoNotOptimize(engine.dispatchCount());
        state.SetItemsProcessed(state.items_processed() +
                                engine.dispatchCount());
    }
}
BENCHMARK(BM_EngineEvents);

/** Per-event cost of the incremental fluid-rate engine in the
 *  production configuration (arena-backed containers, mixed
 *  compute/timer events so both the completion path and the timer
 *  path are exercised). This is the microbench behind the perf
 *  gate's normalized sim-event floor: watch ns/item. */
void
BM_EngineStep(benchmark::State &state)
{
    class Stepper : public sim::Agent
    {
      public:
        std::string_view name() const override { return "stepper"; }
        sim::Action
        resume(sim::Engine &engine) override
        {
            ++step_;
            if (step_ % 5 == 0)
                return sim::Action::sleepUntil(engine.now() + 7.0);
            return sim::Action::compute(10.0, 1.0 + step_ % 3);
        }

      private:
        int step_ = 0;
    };

    support::CellArena arena;
    for (auto _ : state) {
        arena.reset();
        sim::Engine engine(8.0, &arena);
        std::vector<Stepper> agents(8);
        for (auto &agent : agents)
            engine.addAgent(&agent);
        engine.run(1e5);
        benchmark::DoNotOptimize(engine.dispatchCount());
        state.SetItemsProcessed(state.items_processed() +
                                engine.dispatchCount());
    }
}
BENCHMARK(BM_EngineStep);

/** Round-trip cost of the stall→pause→resume chain. A tight heap
 *  drives the mutator into the collector constantly, so the run is
 *  dominated by safepoint sequences: batch world freeze, the fused
 *  TTSP-sleep + pause-compute action, batch resume, and the stall
 *  wakeup (DESIGN.md §14). Items are completed collection cycles:
 *  watch ns/item for the per-pause cost. */
void
BM_PausePath(benchmark::State &state)
{
    runtime::ExecutionConfig cfg;
    cfg.cpus = 8.0;
    cfg.heap_bytes = 48.0 * 1024.0 * 1024.0;
    cfg.survivor_fraction = 0.03;
    cfg.survivor_reference_bytes = cfg.heap_bytes * 0.5;
    cfg.seed = 11;
    cfg.time_limit_sec = 400;

    runtime::MutatorPlan plan;
    plan.iterations = 2;
    plan.width = 4.0;
    plan.work_per_iteration = 0.2e9 * plan.width;
    plan.alloc_per_iteration = 4e9;

    heap::LiveSetModel live;
    live.base_bytes = 20.0 * 1024.0 * 1024.0;
    live.buildup_fraction = 0.05;

    for (auto _ : state) {
        auto collector = gc::makeCollector(gc::Algorithm::Serial);
        const auto result =
            runtime::runExecution(cfg, plan, live, *collector);
        benchmark::DoNotOptimize(result.collections);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<std::int64_t>(result.collections));
    }
}
BENCHMARK(BM_PausePath);

/** Full-suite PCA (standardize + covariance + Jacobi). */
void
BM_SuitePca(benchmark::State &state)
{
    const auto table = stats::shippedStats();
    for (auto _ : state) {
        auto pca = stats::runPca(table, 4);
        benchmark::DoNotOptimize(pca.variance_fraction.data());
    }
}
BENCHMARK(BM_SuitePca);

/** Request synthesis over a long rate timeline. */
void
BM_RequestSynthesis(benchmark::State &state)
{
    std::vector<sim::RateSegment> timeline;
    support::Rng rng(3);
    double t = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const double next = t + rng.exponential(2e5);
        timeline.push_back({t, next, i % 7 ? 1.0 : 0.0});
        t = next;
    }
    workloads::RequestProfile profile;
    profile.enabled = true;
    profile.count = 100000;
    profile.lanes = 16;
    for (auto _ : state) {
        auto rec = metrics::synthesizeRequests(timeline, 1.0, profile,
                                               0.0, t,
                                               support::Rng(4));
        benchmark::DoNotOptimize(rec.size());
    }
    state.SetItemsProcessed(state.iterations() * profile.count);
}
BENCHMARK(BM_RequestSynthesis);

} // namespace

BENCHMARK_MAIN();
