/**
 * @file
 * Table 1: the nominal statistics used to characterize the DaCapo
 * Chopin workloads, with their group and description, plus the
 * suite-wide min/median/max of each (the summary columns of the
 * appendix tables).
 */

#include "bench/bench_common.hh"
#include "stats/stat_table.hh"

using namespace capo;

int
main(int argc, char **argv)
{
    auto flags = bench::standardFlags(
        "Table 1: the nominal-statistic catalog");
    flags.parse(argc, argv);

    bench::banner("Nominal statistics catalog", "Table 1");

    const auto shipped = stats::shippedStats();

    support::TextTable table;
    table.columns({"Metric", "Grp", "Avail", "Min", "Median", "Max",
                   "Description"},
                  {support::TextTable::Align::Left,
                   support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Left});
    for (const auto &info : stats::catalog()) {
        const auto range = shipped.range(info.id);
        std::string desc = info.description;
        if (desc.size() > 58)
            desc = desc.substr(0, 55) + "...";
        table.row({info.code, std::string(1, info.group),
                   std::to_string(range.available),
                   support::general(range.min, 4),
                   support::general(range.median, 4),
                   support::general(range.max, 4), desc});
    }
    table.render(std::cout);

    std::cout << "\n" << stats::catalog().size()
              << " statistics in 5 groups (Allocation, Bytecode, "
                 "Garbage collection,\nPerformance, "
                 "U-architecture); availability varies per workload "
                 "(tradebeans\nand tradesoap ship the fewest at 35, h2 "
                 "the most).\n";
    return 0;
}
