/**
 * @file
 * Table 1: the nominal statistics used to characterize the DaCapo
 * Chopin workloads, with their group and description, plus the
 * suite-wide min/median/max of each (the summary columns of the
 * appendix tables).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/stat_table.hh"

using namespace capo;

namespace {

int
runTab01(report::ExperimentContext &context)
{
    const auto shipped = stats::shippedStats();

    auto &catalog = context.store.table(
        "metric_catalog",
        report::Schema{{"metric", report::Type::String},
                       {"group", report::Type::String},
                       {"available", report::Type::Uint},
                       {"min", report::Type::Double},
                       {"median", report::Type::Double},
                       {"max", report::Type::Double}});

    bench::AsciiTable table({"Metric", "Grp", "Avail", "Min", "Median",
                             "Max", "Description"});
    for (const auto &info : stats::catalog()) {
        const auto range = shipped.range(info.id);
        std::string desc = info.description;
        if (desc.size() > 58)
            desc = desc.substr(0, 55) + "...";
        table.row({info.code, std::string(1, info.group),
                   std::to_string(range.available),
                   support::general(range.min, 4),
                   support::general(range.median, 4),
                   support::general(range.max, 4), desc});
        catalog.addRow(
            {report::Value::str(info.code),
             report::Value::str(std::string(1, info.group)),
             report::Value::uinteger(
                 static_cast<std::uint64_t>(range.available)),
             report::Value::dbl(range.min),
             report::Value::dbl(range.median),
             report::Value::dbl(range.max)});
    }
    table.render(std::cout);

    std::cout << "\n" << stats::catalog().size()
              << " statistics in 5 groups (Allocation, Bytecode, "
                 "Garbage collection,\nPerformance, "
                 "U-architecture); availability varies per workload "
                 "(tradebeans\nand tradesoap ship the fewest at 35, h2 "
                 "the most).\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "tab01_metric_catalog";
    e.title = "Nominal statistics catalog";
    e.paper_ref = "Table 1";
    e.description = "Table 1: the nominal-statistic catalog";
    e.run = runTab01;
    return e;
}()};

} // namespace
