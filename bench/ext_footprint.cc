/**
 * @file
 * Extension experiment (paper Section 4.2's suggestion): compare
 * collectors by the area under the memory-use curve rather than by
 * -Xmx. Two collectors given the same heap limit can hold very
 * different average footprints: eager STW designs collect to the
 * floor often, while concurrent designs ride high between cycles —
 * invisible to a minimum-heap methodology, visible here.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "metrics/footprint.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

int
runExtFootprint(report::ExperimentContext &context)
{
    auto options = context.options;
    options.invocations = 1;
    harness::Runner runner(options);
    const double factor = context.flags.getDouble("factor");

    std::vector<std::string> selection = context.flags.positionals();
    if (selection.empty())
        selection = {"lusearch", "h2", "cassandra", "pmd", "xalan"};

    auto &footprint = context.store.table(
        "footprint",
        report::Schema{{"workload", report::Type::String},
                       {"collector", report::Type::String},
                       {"xmx_mb", report::Type::Double},
                       {"completed", report::Type::Bool},
                       {"avg_footprint_mb", report::Type::Double}});

    std::vector<std::string> header = {"workload", "Xmx (MB)"};
    for (auto algorithm : gc::productionCollectors()) {
        header.push_back(std::string(gc::algorithmName(algorithm)) +
                         " avg MB");
    }
    bench::AsciiTable table(header);

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        std::vector<std::string> row = {
            name, support::fixed(workload.gc.gmd_mb * factor, 0)};
        for (auto algorithm : gc::productionCollectors()) {
            const auto set = runner.run(workload, algorithm, factor);
            if (!set.allCompleted()) {
                row.push_back("DNF");
                footprint.addRow(
                    {report::Value::str(name),
                     report::Value::str(gc::algorithmName(algorithm)),
                     report::Value::dbl(workload.gc.gmd_mb * factor),
                     report::Value::boolean(false),
                     report::Value::dbl(0.0)});
                continue;
            }
            const auto &run = set.runs.front();
            const auto summary = metrics::integrateFootprint(
                run.log, 0.0, run.wall);
            row.push_back(support::fixed(
                summary.average_bytes / (1024.0 * 1024.0), 1));
            footprint.addRow(
                {report::Value::str(name),
                 report::Value::str(gc::algorithmName(algorithm)),
                 report::Value::dbl(workload.gc.gmd_mb * factor),
                 report::Value::boolean(true),
                 report::Value::dbl(summary.average_bytes /
                                    (1024.0 * 1024.0))});
        }
        table.row(row);
    }
    table.render(std::cout);

    std::cout <<
        "\nSame -Xmx, different memory actually held: collectors that\n"
        "defer collection (concurrent designs, large nurseries) carry\n"
        "a higher average footprint than the heap limit alone\n"
        "suggests — the paper's point about -Xmx being a peak-usage\n"
        "proxy rather than a footprint measure.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "ext_footprint";
    e.title = "Average heap footprint by collector";
    e.paper_ref = "Section 4.2's suggested 'area under the memory use "
                  "curve' metric";
    e.description =
        "Extension: area-under-the-memory-curve footprints";
    e.quick_invocations = 1;
    e.quick_iterations = 2;
    e.add_flags = [](support::Flags &flags) {
        flags.addDouble("factor", 3.0, "heap factor (x min heap)");
    };
    e.run = runExtFootprint;
    return e;
}()};

} // namespace
