/**
 * @file
 * Extension experiment (paper Section 4.2's suggestion): compare
 * collectors by the area under the memory-use curve rather than by
 * -Xmx. Two collectors given the same heap limit can hold very
 * different average footprints: eager STW designs collect to the
 * floor often, while concurrent designs ride high between cycles —
 * invisible to a minimum-heap methodology, visible here.
 */

#include "bench/bench_common.hh"
#include "metrics/footprint.hh"
#include "workloads/registry.hh"

using namespace capo;

int
main(int argc, char **argv)
{
    auto flags = bench::standardFlags(
        "Extension: area-under-the-memory-curve footprints");
    flags.addDouble("factor", 3.0, "heap factor (x min heap)");
    flags.parse(argc, argv);

    bench::banner("Average heap footprint by collector",
                  "Section 4.2's suggested 'area under the memory use "
                  "curve' metric");

    auto options = bench::optionsFromFlags(flags, 1, 2);
    options.invocations = 1;
    harness::Runner runner(options);
    const double factor = flags.getDouble("factor");

    std::vector<std::string> selection = flags.positionals();
    if (selection.empty())
        selection = {"lusearch", "h2", "cassandra", "pmd", "xalan"};

    support::TextTable table;
    std::vector<std::string> header = {"workload", "Xmx (MB)"};
    for (auto algorithm : gc::productionCollectors()) {
        header.push_back(std::string(gc::algorithmName(algorithm)) +
                         " avg MB");
    }
    std::vector<support::TextTable::Align> aligns(
        header.size(), support::TextTable::Align::Right);
    aligns[0] = support::TextTable::Align::Left;
    table.columns(header, aligns);

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        std::vector<std::string> row = {
            name, support::fixed(workload.gc.gmd_mb * factor, 0)};
        for (auto algorithm : gc::productionCollectors()) {
            const auto set = runner.run(workload, algorithm, factor);
            if (!set.allCompleted()) {
                row.push_back("DNF");
                continue;
            }
            const auto &run = set.runs.front();
            const auto summary = metrics::integrateFootprint(
                run.log, 0.0, run.wall);
            row.push_back(support::fixed(
                summary.average_bytes / (1024.0 * 1024.0), 1));
        }
        table.row(row);
    }
    table.render(std::cout);

    std::cout <<
        "\nSame -Xmx, different memory actually held: collectors that\n"
        "defer collection (concurrent designs, large nurseries) carry\n"
        "a higher average footprint than the heap limit alone\n"
        "suggests — the paper's point about -Xmx being a peak-usage\n"
        "proxy rather than a footprint measure.\n";
    return 0;
}
