/**
 * @file
 * Extension experiment: SPECjbb2015-style critical-jOPS (paper §3.2
 * mentions the metric when surveying related suites). Under an
 * open-loop load, collector interference caps the injection rate at
 * which tail-latency SLAs can still be met; critical-jOPS is the
 * geometric mean of the highest SLA-meeting rates. Latency-oriented
 * collectors should shine here — unless their CPU appetite slows the
 * requests themselves, the paper's recurring theme.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "support/logging.hh"
#include "metrics/request_synth.hh"
#include "metrics/summary.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

int
runExtCriticalJops(report::ExperimentContext &context)
{
    const auto &workload =
        workloads::byName(context.flags.getString("workload"));
    if (!workload.latency_sensitive)
        support::fatal("pick a latency-sensitive workload");

    harness::ExperimentOptions options = context.options;
    options.invocations = 1;
    options.trace_rate = true;
    harness::Runner runner(options);

    // SLAs on p99 latency, as SPECjbb: 10/25/50/75/100 ms.
    const std::vector<double> slas = {10e6, 25e6, 50e6, 75e6, 100e6};
    // Nominal service demand: 1 ms of work per request.
    const double service_ns = 1e6;

    auto &jops = context.store.table(
        "critical_jops",
        report::Schema{{"workload", report::Type::String},
                       {"collector", report::Type::String},
                       {"completed", report::Type::Bool},
                       {"max_jops", report::Type::Double},
                       {"critical_jops", report::Type::Double},
                       {"p99_at_critical_ms", report::Type::Double}});

    bench::AsciiTable table({"collector", "max jOPS (tested)",
                             "critical-jOPS", "p99 @ critical (ms)"});

    for (auto algorithm : gc::productionCollectors()) {
        const auto set = runner.run(workload, algorithm,
                                    context.flags.getDouble("factor"));
        if (!set.allCompleted()) {
            table.row({gc::algorithmName(algorithm), "DNF", "-", "-"});
            jops.addRow(
                {report::Value::str(workload.name),
                 report::Value::str(gc::algorithmName(algorithm)),
                 report::Value::boolean(false),
                 report::Value::dbl(0.0), report::Value::dbl(0.0),
                 report::Value::dbl(0.0)});
            continue;
        }
        const auto &run = set.runs.front();
        const auto &timed = run.iterations.back();

        // The lanes saturate at lanes/service rate; bracket above it.
        const double max_rate =
            workload.requests.lanes / (service_ns / 1e9);

        auto p99_at = [&](double rate) {
            auto rec = metrics::synthesizeOpenLoopRequests(
                run.rate_timeline, run.baseline_rate,
                workload.requests, timed.wall_begin, timed.wall_end,
                rate, service_ns, support::Rng(91));
            // Arrival-stamped: open-loop p99 must include queueing.
            return metrics::quantile(rec.intendedLatencies(), 0.99);
        };
        const double critical =
            metrics::criticalJops(p99_at, slas, max_rate);

        table.row({gc::algorithmName(algorithm),
                   support::fixed(max_rate, 0),
                   support::fixed(critical, 0),
                   support::fixed(p99_at(critical) / 1e6, 2)});
        jops.addRow({report::Value::str(workload.name),
                     report::Value::str(gc::algorithmName(algorithm)),
                     report::Value::boolean(true),
                     report::Value::dbl(max_rate),
                     report::Value::dbl(critical),
                     report::Value::dbl(p99_at(critical) / 1e6)});
    }
    table.render(std::cout);

    std::cout <<
        "\ncritical-jOPS = geomean over the 10/25/50/75/100 ms p99 SLAs\n"
        "of the highest open-loop injection rate that still meets each\n"
        "SLA, replayed over the collector's measured interference\n"
        "timeline.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "ext_criticaljops";
    e.title = "critical-jOPS under open-loop load";
    e.paper_ref = "Section 3.2's SPECjbb2015 metric, as an extension";
    e.description =
        "Extension: SPECjbb-style critical-jOPS per collector";
    e.quick_invocations = 1;
    e.quick_iterations = 3;
    e.add_flags = [](support::Flags &flags) {
        flags.addDouble("factor", 3.0, "heap factor (x min heap)");
        flags.addString("workload", "cassandra",
                        "latency-sensitive workload to load");
    };
    e.run = runExtCriticalJops;
    return e;
}()};

} // namespace
