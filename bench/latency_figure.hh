/**
 * @file
 * Shared driver for the latency figures (Figures 3, 6 and the
 * appendix latency plots): runs one latency-sensitive workload under
 * every production collector at the requested heap factors, and
 * prints simple and metered percentile curves per panel.
 */

#ifndef CAPO_BENCH_LATENCY_FIGURE_HH
#define CAPO_BENCH_LATENCY_FIGURE_HH

#include <iostream>
#include <map>

#include "bench/bench_common.hh"
#include "support/ascii_chart.hh"
#include "metrics/latency.hh"
#include "metrics/request_synth.hh"
#include "report/table.hh"
#include "support/rng.hh"

namespace capo::bench {

/** One collector's synthesized request log for a configuration. */
struct LatencyRun
{
    bool ok = false;
    metrics::LatencyRecorder requests;
};

/** Run one (workload, collector, factor) and synthesize requests. */
inline LatencyRun
runLatency(const workloads::Descriptor &workload,
           gc::Algorithm algorithm, double factor,
           harness::ExperimentOptions options)
{
    options.trace_rate = true;
    options.invocations = 1;
    harness::Runner runner(options);
    const auto set = runner.run(workload, algorithm, factor);
    LatencyRun out;
    if (!set.allCompleted())
        return out;
    const auto &run = set.runs.front();
    const auto &timed = run.iterations.back();
    out.requests = metrics::synthesizeRequests(
        run.rate_timeline, run.baseline_rate, workload.requests,
        timed.wall_begin, timed.wall_end,
        support::Rng(options.base_seed ^ 0xfacade));
    out.ok = true;
    return out;
}

/** Percentile labels matching the paper's x axis. */
inline std::vector<std::string>
percentileLabels()
{
    return {"0", "50", "90", "99", "99.9", "99.99", "99.999",
            "99.9999"};
}

/** The typed rows behind every latency panel (one per collector and
 *  percentile), keyed so all panels of a figure share one table. */
inline report::ResultTable &
latencyPercentileTable(report::ResultStore &store)
{
    return store.table(
        "latency_percentiles",
        report::Schema{{"workload", report::Type::String},
                       {"factor", report::Type::Double},
                       {"metric", report::Type::String},
                       {"collector", report::Type::String},
                       {"percentile", report::Type::String},
                       {"latency_ns", report::Type::Double}});
}

/**
 * Print one panel: request-latency percentiles (ms) for every
 * collector, for the chosen metric.
 *
 * @param window_ns Metered smoothing window; < 0 selects simple
 *        latency, 0 selects full smoothing.
 * @param rows Optional typed sink for the panel's percentile points
 *        (@p workload / @p factor / @p metric name the panel there).
 */
inline void
latencyPanel(const std::string &title,
             const std::map<std::string, LatencyRun> &runs,
             double window_ns, report::ResultTable *rows = nullptr,
             const std::string &workload = "", double factor = 0.0,
             const std::string &metric = "")
{
    std::cout << "\n## " << title << "\n";
    const auto labels = percentileLabels();
    std::vector<std::string> header = {"percentile"};
    header.insert(header.end(), labels.begin(), labels.end());
    bench::AsciiTable table(header);

    support::AsciiChart chart(64, 14);
    chart.setLogY(true);
    chart.setXLabel("percentile (index)");
    chart.setYLabel("request latency (ms)");

    for (const auto &[name, run] : runs) {
        std::vector<std::string> row = {name};
        if (!run.ok) {
            row.insert(row.end(), labels.size(), "-");
            table.row(row);
            continue;
        }
        const auto latencies = window_ns < 0.0
            ? run.requests.simpleLatencies()
            : run.requests.meteredLatencies(window_ns);
        const auto curve = metrics::percentileCurve(latencies);
        std::vector<std::pair<double, double>> pts;
        for (std::size_t i = 0; i < curve.size(); ++i) {
            row.push_back(latencyMs(curve[i].second));
            pts.emplace_back(static_cast<double>(i),
                             curve[i].second / 1e6);
            if (rows != nullptr && i < labels.size()) {
                rows->addRow({report::Value::str(workload),
                              report::Value::dbl(factor),
                              report::Value::str(metric),
                              report::Value::str(name),
                              report::Value::str(labels[i]),
                              report::Value::dbl(curve[i].second)});
            }
        }
        chart.addSeries(name, std::move(pts));
        table.row(row);
    }
    table.render(std::cout);
    std::cout << chart.render();
}

/** Produce the full figure for one workload (all panels). */
inline void
latencyFigure(const workloads::Descriptor &workload,
              const harness::ExperimentOptions &options,
              const std::vector<double> &factors = {2.0, 6.0},
              report::ResultStore *store = nullptr)
{
    report::ResultTable *rows =
        store != nullptr ? &latencyPercentileTable(*store) : nullptr;
    for (double factor : factors) {
        std::map<std::string, LatencyRun> runs;
        for (auto algorithm : gc::productionCollectors()) {
            runs[gc::algorithmName(algorithm)] =
                runLatency(workload, algorithm, factor, options);
        }
        const std::string at =
            workload.name + ", " + support::fixed(factor, 1) + "x heap (" +
            support::fixed(workload.gc.gmd_mb * factor, 0) + " MB)";
        latencyPanel("Simple latency, " + at + " [ms]", runs, -1.0,
                     rows, workload.name, factor, "simple");
        latencyPanel("Metered latency (100 ms smoothing), " + at +
                         " [ms]",
                     runs, 100e6, rows, workload.name, factor,
                     "metered_100ms");
        latencyPanel("Metered latency (full smoothing), " + at + " [ms]",
                     runs, 0.0, rows, workload.name, factor,
                     "metered_full");
    }
}

} // namespace capo::bench

#endif // CAPO_BENCH_LATENCY_FIGURE_HH
