/**
 * @file
 * Figure 2: why GC pause time is a poor proxy for responsiveness
 * (Cheng & Blelloch). A train of short pauses can deny the mutator as
 * much CPU as one long pause over the windows users feel, even though
 * its "max pause" headline is 10x smaller. Demonstrated first on
 * synthetic pause trains, then on real pause logs from two collectors
 * on a simulated run.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "metrics/mmu.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

void
mmuRow(bench::AsciiTable &table, report::ResultTable &rows,
       const std::string &label, const metrics::Mmu &mmu,
       const std::vector<double> &windows_ms)
{
    std::vector<std::string> row = {
        label, support::fixed(mmu.maxPause() / 1e6, 1)};
    for (double w : windows_ms) {
        row.push_back(support::fixed(mmu.at(w * 1e6), 3));
        rows.addRow({report::Value::str(label),
                     report::Value::dbl(mmu.maxPause() / 1e6),
                     report::Value::dbl(w),
                     report::Value::dbl(mmu.at(w * 1e6))});
    }
    table.row(row);
}

int
runFig02(report::ExperimentContext &context)
{
    auto &mmu_table = context.store.table(
        "mmu",
        report::Schema{{"scenario", report::Type::String},
                       {"max_pause_ms", report::Type::Double},
                       {"window_ms", report::Type::Double},
                       {"mmu", report::Type::Double}});

    const std::vector<double> windows_ms = {1, 5, 20, 50, 110, 500,
                                            1000};
    std::vector<std::string> header = {"scenario", "max pause (ms)"};
    for (double w : windows_ms)
        header.push_back("MMU@" + support::fixed(w, 0) + "ms");
    bench::AsciiTable table(header);

    // Synthetic: one 100 ms pause over a 1 s run.
    metrics::Mmu one({{450e6, 550e6}}, 0.0, 1e9);
    mmuRow(table, mmu_table, "one 100 ms pause", one, windows_ms);

    // Synthetic: ten 10 ms pauses with 1 ms gaps.
    std::vector<std::pair<double, double>> train;
    for (int i = 0; i < 10; ++i) {
        const double b = 450e6 + i * 11e6;
        train.emplace_back(b, b + 10e6);
    }
    metrics::Mmu many(train, 0.0, 1e9);
    mmuRow(table, mmu_table, "10 x 10 ms pauses", many, windows_ms);
    table.separator();

    // Real pause logs from a simulated run of lusearch at 2x.
    auto options = context.options;
    options.invocations = 1;
    harness::Runner runner(options);
    for (auto algorithm : {gc::Algorithm::Serial, gc::Algorithm::G1,
                           gc::Algorithm::Shenandoah}) {
        const auto set = runner.run(workloads::byName("lusearch"),
                                    algorithm, 2.0);
        if (!set.allCompleted())
            continue;
        const auto &run = set.runs.front();
        metrics::Mmu mmu(run.log.stwIntervals(), 0.0, run.wall);
        mmuRow(table, mmu_table,
               std::string("lusearch 2x / ") +
                   gc::algorithmName(algorithm),
               mmu, windows_ms);
    }

    table.render(std::cout);
    std::cout <<
        "\nThe pause train's max pause is 10x smaller, but its MMU over\n"
        "~100 ms windows collapses just as badly: never use GC pause\n"
        "time as a proxy for user-experienced latency (Recommendation "
        "L1).\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "fig02_mmu_pauses";
    e.title = "Pause times mislead; MMU does not";
    e.paper_ref = "Figure 2";
    e.description =
        "Figure 2: pause-time vs minimum mutator utilization";
    e.quick_invocations = 1;
    e.quick_iterations = 2;
    e.run = runFig02;
    return e;
}()};

} // namespace
