/**
 * @file
 * Appendix heap-timeline figures (Figures 8, 10, ...): heap size
 * after each garbage collection over the last benchmark iteration,
 * running with the default (G1) collector at 2x the minimum heap.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

int
runFigAHeapTimeline(report::ExperimentContext &context)
{
    auto options = context.options;
    options.invocations = 1;
    harness::Runner runner(options);
    const auto buckets =
        static_cast<std::size_t>(context.flags.getInt("buckets"));

    std::vector<std::string> selection = context.flags.positionals();
    if (selection.empty())
        selection = workloads::names();

    auto &timeline = context.store.table(
        "heap_timeline",
        report::Schema{{"workload", report::Type::String},
                       {"gcs", report::Type::Uint},
                       {"bucket", report::Type::Uint},
                       {"mean_post_gc_mb", report::Type::Double}});

    std::vector<std::string> header = {"workload", "GCs"};
    for (std::size_t b = 0; b < buckets; ++b) {
        header.push_back(
            "t" + std::to_string((b + 1) * 100 / buckets) + "%");
    }
    bench::AsciiTable table(header);

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        const auto set = runner.run(workload, gc::Algorithm::G1, 2.0);
        if (!set.allCompleted()) {
            table.row({name, "-"});
            continue;
        }
        const auto &run = set.runs.front();
        const auto &timed = run.iterations.back();
        const double begin = timed.wall_begin;
        const double span = timed.wall_end - begin;

        // Mean post-GC heap (MB) per time bucket of the iteration.
        std::vector<double> sums(buckets, 0.0);
        std::vector<int> counts(buckets, 0);
        std::size_t total = 0;
        for (const auto &cycle : run.log.cycles()) {
            if (cycle.end < begin || cycle.end > timed.wall_end)
                continue;
            auto b = static_cast<std::size_t>(
                (cycle.end - begin) / span * buckets);
            b = std::min(b, buckets - 1);
            sums[b] += cycle.post_gc_bytes / (1024.0 * 1024.0);
            ++counts[b];
            ++total;
        }

        std::vector<std::string> row = {name, std::to_string(total)};
        for (std::size_t b = 0; b < buckets; ++b) {
            row.push_back(counts[b]
                              ? support::fixed(sums[b] / counts[b], 1)
                              : ".");
            timeline.addRow(
                {report::Value::str(name),
                 report::Value::uinteger(total),
                 report::Value::uinteger(b),
                 report::Value::dbl(
                     counts[b] ? sums[b] / counts[b] : 0.0)});
        }
        table.row(row);
    }
    table.render(std::cout);
    std::cout << "\nCells: mean post-GC heap (MB) in each tenth of the "
                 "timed iteration\n(the appendix plots each collection "
                 "as a point; '.' = no GC in bucket).\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "figA_heap_timeline";
    e.title = "Post-GC heap size over the last iteration";
    e.paper_ref = "appendix Figures 8, 10, ...";
    e.description =
        "Appendix: post-GC heap size over time (G1 at 2x heap)";
    e.quick_invocations = 1;
    e.quick_iterations = 2;
    e.add_flags = [](support::Flags &flags) {
        flags.addInt("buckets", 12, "time buckets per workload series");
    };
    e.run = runFigAHeapTimeline;
    return e;
}()};

} // namespace
