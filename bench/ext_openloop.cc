/**
 * @file
 * Extension experiment: open-loop traffic vs GC pacing as congestion
 * control. The paper (§4.4) measures user-experienced latency under
 * closed-loop DaCapo workloads; this extension attaches live
 * open-loop arrival agents (load/driver) and compares three regimes
 * per load factor: closed-loop post-hoc synthesis, the collector's
 * static free-heap pacer, and the utility-gradient feedback pacer
 * (load/pacer). The table makes two gaps directly visible: the
 * coordinated-omission gap (arrival- vs service-stamped p99) and the
 * pacing-policy gap (utility static vs adaptive).
 */

#include <iostream>
#include <sstream>

#include "bench/bench_common.hh"
#include "harness/openloop_experiment.hh"
#include "support/logging.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto begin = item.find_first_not_of(" \t");
        const auto end = item.find_last_not_of(" \t");
        if (begin != std::string::npos)
            out.push_back(item.substr(begin, end - begin + 1));
    }
    return out;
}

int
runExtOpenLoop(report::ExperimentContext &context)
{
    const auto &workload =
        workloads::byName(context.flags.getString("workload"));
    if (!workload.latency_sensitive)
        support::fatal("pick a latency-sensitive workload");

    harness::OpenLoopSweepOptions sweep;
    sweep.base = context.options;
    sweep.heap_factor = context.flags.getDouble("factor");
    sweep.lanes = static_cast<int>(context.flags.getInt("lanes"));

    sweep.load_factors.clear();
    for (const auto &item :
         splitList(context.flags.getString("rates"))) {
        const double factor = std::stod(item);
        if (factor <= 0.0)
            support::fatal("load factors must be positive");
        sweep.load_factors.push_back(factor);
    }
    if (sweep.load_factors.empty())
        support::fatal("empty --rates list");

    sweep.modes.clear();
    for (const auto &mode :
         splitList(context.flags.getString("modes"))) {
        if (mode != "closed" && mode != "static" && mode != "adaptive")
            support::fatal("unknown mode (closed|static|adaptive)");
        sweep.modes.push_back(mode);
    }
    if (sweep.modes.empty())
        support::fatal("empty --modes list");

    if (!load::tryArrivalKindFromName(
            context.flags.getString("arrival"), &sweep.arrival.kind))
        support::fatal("unknown arrival (poisson|onoff|diurnal)");

    auto &out = context.store.table(
        "openloop",
        report::Schema{{"workload", report::Type::String},
                       {"collector", report::Type::String},
                       {"mode", report::Type::String},
                       {"load", report::Type::Double},
                       {"completed", report::Type::Bool},
                       {"arrival_p50_ms", report::Type::Double},
                       {"arrival_p99_ms", report::Type::Double},
                       {"arrival_p999_ms", report::Type::Double},
                       {"service_p50_ms", report::Type::Double},
                       {"service_p99_ms", report::Type::Double},
                       {"service_p999_ms", report::Type::Double},
                       {"goodput_rps", report::Type::Double},
                       {"utility", report::Type::Double},
                       {"mean_pace", report::Type::Double},
                       {"shed", report::Type::Double}});

    const auto result =
        harness::runOpenLoopSweep({workload.name}, sweep);

    bench::AsciiTable table({"collector", "mode", "load", "p50(arr)",
                             "p99(arr)", "p99(srv)", "goodput",
                             "utility", "pace"});
    for (const auto &cell : result.cells) {
        if (cell.ok) {
            table.row({cell.collector, cell.mode,
                       support::fixed(cell.load_factor, 2),
                       support::fixed(cell.arrival_p50_ns / 1e6, 3),
                       support::fixed(cell.arrival_p99_ns / 1e6, 3),
                       support::fixed(cell.service_p99_ns / 1e6, 3),
                       support::fixed(cell.goodput_rps, 1),
                       support::fixed(cell.utility, 2),
                       support::fixed(cell.mean_pace, 2)});
        } else {
            table.row({cell.collector, cell.mode,
                       support::fixed(cell.load_factor, 2), "DNF", "-",
                       "-", "-", "-", "-"});
        }
        out.addRow({report::Value::str(cell.workload),
                    report::Value::str(cell.collector),
                    report::Value::str(cell.mode),
                    report::Value::dbl(cell.load_factor),
                    report::Value::boolean(cell.ok),
                    report::Value::dbl(cell.arrival_p50_ns / 1e6),
                    report::Value::dbl(cell.arrival_p99_ns / 1e6),
                    report::Value::dbl(cell.arrival_p999_ns / 1e6),
                    report::Value::dbl(cell.service_p50_ns / 1e6),
                    report::Value::dbl(cell.service_p99_ns / 1e6),
                    report::Value::dbl(cell.service_p999_ns / 1e6),
                    report::Value::dbl(cell.goodput_rps),
                    report::Value::dbl(cell.utility),
                    report::Value::dbl(cell.mean_pace),
                    report::Value::dbl(cell.shed)});
    }
    table.render(std::cout);

    std::cout <<
        "\np99(arr) stamps latency from each request's arrival, so the\n"
        "gap to p99(srv) is the coordinated-omission error; 'closed'\n"
        "synthesizes traffic post hoc while 'static'/'adaptive' attach\n"
        "live open-loop agents under the named GC pacing policy.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "ext_openloop_pacing";
    e.title = "open-loop traffic vs feedback GC pacing";
    e.paper_ref = "Section 4.4's latency lens, as an extension";
    e.description =
        "Extension: closed vs open loop, static vs adaptive pacing";
    e.quick_invocations = 1;
    e.quick_iterations = 2;
    e.add_flags = [](support::Flags &flags) {
        flags.addDouble("factor", 2.0, "heap factor (x min heap)");
        flags.addString("workload", "lusearch",
                        "latency-sensitive workload to load");
        flags.addString("rates", "0.5,1.2",
                        "load factors (1.0 = lane saturation)");
        flags.addString("arrival", "poisson",
                        "arrival process (poisson|onoff|diurnal)");
        flags.addString("modes", "closed,static,adaptive",
                        "comparison modes to run");
        flags.addInt("lanes", 8, "open-loop service lanes");
    };
    e.run = runExtOpenLoop;
    return e;
}()};

} // namespace
