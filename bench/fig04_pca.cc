/**
 * @file
 * Figure 4: principal components analysis of the 22 workloads with
 * respect to the nominal statistics available on every benchmark —
 * the paper's evidence that the suite is diverse. Prints variance
 * explained per component and each workload's PC1-PC4 coordinates
 * (the scatter data of Figures 4a/4b), plus the most determinant
 * metrics feeding Table 2.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "support/ascii_chart.hh"
#include "stats/pca.hh"

using namespace capo;

namespace {

int
runFig04(report::ExperimentContext &context)
{
    const auto table = stats::shippedStats();
    const auto pca = stats::runPca(table, 4);

    std::cout << "Complete metrics used: " << pca.metrics.size()
              << " (paper: 33)\n  ";
    for (auto id : pca.metrics)
        std::cout << stats::metricCode(id) << ' ';
    std::cout << "\n\nVariance explained:";
    double top4 = 0.0;
    for (std::size_t c = 0; c < pca.variance_fraction.size(); ++c) {
        std::cout << "  PC" << c + 1 << " "
                  << support::percent(pca.variance_fraction[c], 0);
        top4 += pca.variance_fraction[c];
    }
    std::cout << "  (top four: " << support::percent(top4, 0)
              << "; paper: 18/16/14/11 = 59 %)\n\n";

    auto &scores = context.store.table(
        "pca_scores",
        report::Schema{{"workload", report::Type::String},
                       {"pc1", report::Type::Double},
                       {"pc2", report::Type::Double},
                       {"pc3", report::Type::Double},
                       {"pc4", report::Type::Double}});

    bench::AsciiTable scatter({"workload", "PC1", "PC2", "PC3", "PC4"});
    for (std::size_t w = 0; w < pca.workloads.size(); ++w) {
        std::vector<std::string> row = {pca.workloads[w]};
        for (int c = 0; c < 4; ++c)
            row.push_back(support::fixed(pca.scores[w][c], 2));
        scatter.row(row);
        scores.addRow({report::Value::str(pca.workloads[w]),
                       report::Value::dbl(pca.scores[w][0]),
                       report::Value::dbl(pca.scores[w][1]),
                       report::Value::dbl(pca.scores[w][2]),
                       report::Value::dbl(pca.scores[w][3])});
    }
    scatter.render(std::cout);

    // Scatter plots of (PC1, PC2) and (PC3, PC4), like Figure 4.
    for (int panel = 0; panel < 2; ++panel) {
        const int cx = panel == 0 ? 0 : 2;
        const int cy = cx + 1;
        support::AsciiChart chart(64, 16);
        chart.setConnect(false);
        chart.setTitle(support::concat("\nFigure 4(", panel ? "b" : "a",
                                       "): PC", cx + 1, " vs PC",
                                       cy + 1));
        chart.setXLabel(support::concat("PC", cx + 1));
        chart.setYLabel(support::concat("PC", cy + 1));
        // One series per workload so the legend names the points.
        for (std::size_t w = 0; w < pca.workloads.size(); ++w) {
            chart.addSeries(pca.workloads[w],
                            {{pca.scores[w][cx], pca.scores[w][cy]}});
        }
        std::cout << chart.render();
    }

    std::cout << "\nMost determinant metrics (top 12, feeding Table 2): ";
    const auto determinant = pca.determinantMetrics(4);
    for (std::size_t i = 0; i < 12 && i < determinant.size(); ++i)
        std::cout << stats::metricCode(determinant[i]) << ' ';
    std::cout << "\n(paper Table 2 lists: GLK GMU PET PFS PKP PWU UAA "
                 "UAI UBP UBR UBS USF)\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "fig04_pca";
    e.title = "Principal components analysis of the suite";
    e.paper_ref = "Figure 4(a,b)";
    e.description = "Figure 4: PCA of workload diversity";
    e.run = runFig04;
    return e;
}()};

} // namespace
