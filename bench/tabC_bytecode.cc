/**
 * @file
 * Bytecode instrumentation (Section 5.1): the suite ships the tools
 * that compute the allocation (A) and bytecode (B) statistic groups
 * by instrumented execution. This binary runs capo's equivalent —
 * synthesize each workload's program, execute it under the
 * instrumenting interpreter, derive the statistics — and prints
 * measured vs shipped values.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "bytecode/characterize.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

int
runTabC(report::ExperimentContext &context)
{
    bytecode::CharacterizeOptions options;
    options.instruction_budget =
        static_cast<std::uint64_t>(context.flags.getInt("budget"));

    std::vector<std::string> selection = context.flags.positionals();
    if (selection.empty())
        selection = {"lusearch", "h2", "fop", "pmd", "luindex",
                     "sunflow", "jython"};

    auto &bytecode_stats = context.store.table(
        "bytecode_stats",
        report::Schema{{"workload", report::Type::String},
                       {"stat", report::Type::String},
                       {"shipped", report::Type::Double},
                       {"measured", report::Type::Double},
                       {"have_shipped", report::Type::Bool}});

    bench::AsciiTable table(
        {"workload", "stat", "shipped", "measured", "ratio"});

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        if (!workloads::available(workload.bytecode.bub)) {
            table.row({name, "(no instrumentation support)", "-", "-",
                       "-"});
            continue;
        }
        std::cerr << "  instrumenting " << name << "...\n";
        const auto measured =
            bytecode::characterizeBytecode(workload, options);

        auto row = [&](const char *stat, double shipped,
                       double value) {
            table.row({name, stat,
                       workloads::available(shipped)
                           ? support::general(shipped, 4)
                           : "-",
                       support::general(value, 4),
                       (workloads::available(shipped) && shipped > 0.0)
                           ? support::fixed(value / shipped, 2)
                           : "-"});
            bytecode_stats.addRow(
                {report::Value::str(name), report::Value::str(stat),
                 report::Value::dbl(
                     workloads::available(shipped) ? shipped : 0.0),
                 report::Value::dbl(value),
                 report::Value::boolean(
                     workloads::available(shipped))});
        };
        row("AOA (avg object bytes)", workload.alloc.aoa, measured.aoa);
        row("AOM (median bytes)", workload.alloc.aom, measured.aom);
        row("ARA (bytes/usec)", workload.alloc.ara, measured.ara);
        row("BAL (aaload/usec)", workload.bytecode.bal, measured.bal);
        row("BGF (getfield/usec)", workload.bytecode.bgf, measured.bgf);
        row("BPF (putfield/usec)", workload.bytecode.bpf, measured.bpf);
        row("BUB (Kbytecodes)", workload.bytecode.bub, measured.bub);
        row("BUF (Kfunctions)", workload.bytecode.buf, measured.buf);
        row("BEF (focus)", workload.bytecode.bef, measured.bef);
        table.separator();
    }
    table.render(std::cout);

    std::cout <<
        "\nRatios near 1 mean the synthesized program, executed under\n"
        "instrumentation, reproduces the published characterization;\n"
        "rare opcodes carry ~1/sqrt(sites) single-realization noise\n"
        "(see tests/bytecode). BUB undershoots where the execution\n"
        "budget does not touch all cold code — exactly why the real\n"
        "tools are 'time-consuming' (Section 5.1).\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "tabC_bytecode";
    e.title = "Instrumented bytecode characterization";
    e.paper_ref = "Section 5.1 (the shipped instrumentation tools)";
    e.description =
        "Section 5.1: bytecode-instrumented A/B statistics";
    e.add_flags = [](support::Flags &flags) {
        flags.addInt("budget", 8'000'000,
                     "instructions to execute per workload");
    };
    e.run = runTabC;
    return e;
}()};

} // namespace
