/**
 * @file
 * Table 2: the twelve most PCA-determinant nominal statistics and
 * their values for each of the 22 workloads — each cell showing the
 * benchmark's rank (1 = largest) and the concrete value.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hh"
#include "stats/pca.hh"

using namespace capo;

namespace {

int
runTab02(report::ExperimentContext &context)
{
    const auto table = stats::shippedStats();

    std::vector<stats::MetricId> metrics;
    if (context.flags.getBool("paper-selection")) {
        for (const char *code : {"GLK", "GMU", "PET", "PFS", "PKP",
                                 "PWU", "UAA", "UAI", "UBP", "UBR",
                                 "UBS", "USF"}) {
            metrics.push_back(stats::metricFromCode(code));
        }
    } else {
        const auto pca = stats::runPca(table, 4);
        const auto ranked = pca.determinantMetrics(4);
        metrics.assign(ranked.begin(),
                       ranked.begin() + std::min<std::size_t>(
                                            12, ranked.size()));
    }

    auto &determinant = context.store.table(
        "determinant",
        report::Schema{{"workload", report::Type::String},
                       {"metric", report::Type::String},
                       {"rank", report::Type::Int},
                       {"value", report::Type::Double}});

    std::vector<std::string> header = {"Benchmark"};
    for (auto id : metrics)
        header.push_back(stats::metricCode(id));
    bench::AsciiTable out(header);

    for (const auto &workload : table.workloads()) {
        std::vector<std::string> rank_row = {workload};
        std::vector<std::string> value_row = {""};
        for (auto id : metrics) {
            const auto value = table.get(workload, id);
            if (!value) {
                rank_row.push_back("-");
                value_row.push_back("");
                continue;
            }
            const auto rs = table.rankScore(workload, id);
            rank_row.push_back(std::to_string(rs.rank));
            value_row.push_back(support::general(*value, 4));
            determinant.addRow({report::Value::str(workload),
                                report::Value::str(
                                    stats::metricCode(id)),
                                report::Value::integer(rs.rank),
                                report::Value::dbl(*value)});
        }
        out.row(rank_row);
        out.row(value_row);
    }
    out.render(std::cout);

    std::cout << "\nEach benchmark cell: rank (top line; 1 = largest) "
                 "and value (bottom line),\nas in the paper's Table "
                 "2.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "tab02_determinant";
    e.title = "Twelve most determinant nominal statistics";
    e.paper_ref = "Table 2";
    e.description =
        "Table 2: most determinant nominal statistics per workload";
    e.add_flags = [](support::Flags &flags) {
        flags.addBool("paper-selection", true,
                      "use the paper's Table 2 metric list; pass "
                      "--paper-selection=false to use our own PCA "
                      "ranking");
    };
    e.run = runTab02;
    return e;
}()};

} // namespace
