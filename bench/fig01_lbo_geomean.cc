/**
 * @file
 * Figure 1: lower bounds on the overheads of the five OpenJDK 21
 * production garbage collectors as a function of heap size — the
 * geometric mean over all 22 DaCapo Chopin benchmarks, on both the
 * wall-clock and total-CPU (task clock) axes. Points are only plotted
 * where the collector can run all 22 benchmarks to completion.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "exec/pool.hh"
#include "support/ascii_chart.hh"
#include "harness/lbo_experiment.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

/** One full suite sweep, returning per-workload results. */
std::vector<harness::WorkloadLbo>
sweepSuite(const harness::LboSweepOptions &sweep)
{
    std::vector<harness::WorkloadLbo> per_workload;
    for (const auto &workload : workloads::suite()) {
        std::cerr << "  sweeping " << workload.name << "...\n";
        per_workload.push_back(harness::runLboSweep(workload, sweep));
    }
    return per_workload;
}

/** Are two aggregated curves bit-identical? */
bool
identicalPoints(const std::vector<harness::SuiteLboPoint> &a,
                const std::vector<harness::SuiteLboPoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].collector != b[i].collector ||
            a[i].factor != b[i].factor ||
            a[i].plotted != b[i].plotted ||
            a[i].completed != b[i].completed ||
            a[i].wall_geomean != b[i].wall_geomean ||
            a[i].cpu_geomean != b[i].cpu_geomean)
            return false;
    }
    return true;
}

int
runFig01(report::ExperimentContext &context)
{
    harness::LboSweepOptions sweep;
    sweep.factors = {1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0};
    sweep.base = context.options;

    const double start = bench::monotonicSeconds();
    const auto per_workload = sweepSuite(sweep);
    const double elapsed = bench::monotonicSeconds() - start;
    const auto points = harness::aggregateSuiteLbo(per_workload, sweep);

    std::uint64_t dispatches = 0;
    for (const auto &w : per_workload)
        dispatches += w.dispatches;
    const std::size_t cells = per_workload.size() *
                              sweep.collectors.size() *
                              sweep.factors.size();

    auto &curve = context.store.table(
        "suite_lbo",
        report::Schema{{"collector", report::Type::String},
                       {"factor", report::Type::Double},
                       {"plotted", report::Type::Bool},
                       {"completed", report::Type::Uint},
                       {"wall_geomean", report::Type::Double},
                       {"cpu_geomean", report::Type::Double}});
    for (const auto &p : points) {
        curve.addRow({report::Value::str(p.collector),
                      report::Value::dbl(p.factor),
                      report::Value::boolean(p.plotted),
                      report::Value::uinteger(p.completed),
                      report::Value::dbl(p.wall_geomean),
                      report::Value::dbl(p.cpu_geomean)});
    }

    const std::string report_path =
        context.flags.getString("bench-json");
    if (!report_path.empty()) {
        bench::BenchJson report;
        report.set("bench", std::string("fig01_lbo_geomean"));
        report.set("jobs",
                   static_cast<int>(exec::resolveJobs(sweep.base.jobs)));
        report.set("cells", static_cast<std::uint64_t>(cells));
        report.set("elapsed_sec", elapsed);
        report.set("cells_per_sec", cells / elapsed);
        report.set("sim_events", dispatches);
        report.set("sim_events_per_sec",
                   static_cast<double>(dispatches) / elapsed);

        // With parallelism requested, rerun serially to measure the
        // speedup and prove the output bit-identical.
        if (exec::resolveJobs(sweep.base.jobs) > 1) {
            std::cerr << "  serial rerun for speedup baseline...\n";
            harness::LboSweepOptions serial = sweep;
            serial.base.jobs = 1;
            const double serial_start = bench::monotonicSeconds();
            const auto serial_workloads = sweepSuite(serial);
            const double serial_elapsed =
                bench::monotonicSeconds() - serial_start;
            const auto serial_points =
                harness::aggregateSuiteLbo(serial_workloads, serial);
            report.set("serial_elapsed_sec", serial_elapsed);
            report.set("speedup", serial_elapsed / elapsed);
            report.set("identical_to_serial",
                       identicalPoints(points, serial_points));
        }
        if (report.write(context.artifacts, report_path))
            std::cerr << "  wrote " << report_path << "\n";
    }

    for (const char *axis : {"wall", "cpu"}) {
        const bool wall = std::string(axis) == "wall";
        std::cout << (wall ? "\n## (a) Wall-clock time overhead (LBO)\n"
                           : "\n## (b) Total CPU overhead "
                             "(TASK_CLOCK, LBO)\n");
        std::vector<std::string> header = {"collector", "year"};
        for (double f : sweep.factors)
            header.push_back(support::fixed(f, 2) + "x");
        bench::AsciiTable table(header);

        for (auto algorithm : sweep.collectors) {
            const std::string name = gc::algorithmName(algorithm);
            auto collector = gc::makeCollector(algorithm);
            std::vector<std::string> row = {
                name, std::to_string(collector->introducedYear())};
            for (double f : sweep.factors) {
                const harness::SuiteLboPoint *match = nullptr;
                for (const auto &p : points) {
                    if (p.collector == name && p.factor == f)
                        match = &p;
                }
                if (match && match->plotted) {
                    row.push_back(bench::overhead(
                        wall ? match->wall_geomean : match->cpu_geomean));
                } else if (match && match->completed > 0) {
                    row.push_back("(" + std::to_string(match->completed) +
                                  "/22)");
                } else {
                    row.push_back("-");
                }
            }
            table.row(row);
        }
        table.render(std::cout);
    }

    // Render the two panels as charts (the shape is the result).
    for (const char *axis : {"wall", "cpu"}) {
        const bool wall = std::string(axis) == "wall";
        support::AsciiChart chart(68, 18);
        chart.setTitle(wall ? "\nFigure 1(a): wall-clock LBO vs heap size"
                            : "\nFigure 1(b): task-clock LBO vs heap size");
        chart.setXLabel("heap size (x minheap)");
        chart.setYLabel(wall ? "normalized time overhead (LBO)"
                             : "normalized CPU overhead (LBO)");
        chart.setYRange(1.0, 2.0);  // the paper's y limits
        for (auto algorithm : sweep.collectors) {
            const std::string name = gc::algorithmName(algorithm);
            std::vector<std::pair<double, double>> pts;
            for (const auto &p : points) {
                if (p.collector == name && p.plotted) {
                    pts.emplace_back(p.factor, wall ? p.wall_geomean
                                                    : p.cpu_geomean);
                }
            }
            chart.addSeries(name, std::move(pts));
        }
        std::cout << chart.render();
    }

    std::cout <<
        "\nPaper reference points: best-case wall overhead ~9 % (G1 and\n"
        "Parallel at 6x), best-case CPU overhead ~15 % (Serial); newer\n"
        "collectors cost more CPU (Serial < Parallel < G1 < Shen/ZGC);\n"
        "overheads exceed 2x at the smallest heaps; ZGC (no compressed\n"
        "pointers) cannot complete the whole suite below ~2-3x.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "fig01_lbo_geomean";
    e.title = "Lower-bound overheads, geomean over 22 workloads";
    e.paper_ref = "Figure 1(a,b)";
    e.description =
        "Figure 1: suite-wide lower-bound GC overheads vs heap size";
    e.add_flags = [](support::Flags &flags) {
        // Off by default: the committed BENCH_harness.json is now the
        // obs-layer snapshot (capo-bench snapshot), a different
        // schema; this flat report remains for the CI smoke check.
        flags.addString("bench-json", "",
                        "machine-readable throughput report path "
                        "(empty disables)");
    };
    e.run = runFig01;
    return e;
}()};

} // namespace
