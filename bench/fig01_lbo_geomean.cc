/**
 * @file
 * Figure 1: lower bounds on the overheads of the five OpenJDK 21
 * production garbage collectors as a function of heap size — the
 * geometric mean over all 22 DaCapo Chopin benchmarks, on both the
 * wall-clock and total-CPU (task clock) axes. Points are only plotted
 * where the collector can run all 22 benchmarks to completion.
 */

#include "bench/bench_common.hh"
#include "support/ascii_chart.hh"
#include "harness/lbo_experiment.hh"
#include "workloads/registry.hh"

using namespace capo;

int
main(int argc, char **argv)
{
    auto flags = bench::standardFlags(
        "Figure 1: suite-wide lower-bound GC overheads vs heap size");
    flags.parse(argc, argv);

    bench::banner("Lower-bound overheads, geomean over 22 workloads",
                  "Figure 1(a,b)");

    harness::LboSweepOptions sweep;
    sweep.factors = {1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0};
    sweep.base = bench::optionsFromFlags(flags);

    std::vector<harness::WorkloadLbo> per_workload;
    for (const auto &workload : workloads::suite()) {
        std::cerr << "  sweeping " << workload.name << "...\n";
        per_workload.push_back(harness::runLboSweep(workload, sweep));
    }
    const auto points = harness::aggregateSuiteLbo(per_workload, sweep);

    for (const char *axis : {"wall", "cpu"}) {
        const bool wall = std::string(axis) == "wall";
        std::cout << (wall ? "\n## (a) Wall-clock time overhead (LBO)\n"
                           : "\n## (b) Total CPU overhead "
                             "(TASK_CLOCK, LBO)\n");
        support::TextTable table;
        std::vector<std::string> header = {"collector", "year"};
        for (double f : sweep.factors)
            header.push_back(support::fixed(f, 2) + "x");
        std::vector<support::TextTable::Align> aligns(
            header.size(), support::TextTable::Align::Right);
        aligns[0] = support::TextTable::Align::Left;
        table.columns(header, aligns);

        for (auto algorithm : sweep.collectors) {
            const std::string name = gc::algorithmName(algorithm);
            auto collector = gc::makeCollector(algorithm);
            std::vector<std::string> row = {
                name, std::to_string(collector->introducedYear())};
            for (double f : sweep.factors) {
                const harness::SuiteLboPoint *match = nullptr;
                for (const auto &p : points) {
                    if (p.collector == name && p.factor == f)
                        match = &p;
                }
                if (match && match->plotted) {
                    row.push_back(bench::overhead(
                        wall ? match->wall_geomean : match->cpu_geomean));
                } else if (match && match->completed > 0) {
                    row.push_back("(" + std::to_string(match->completed) +
                                  "/22)");
                } else {
                    row.push_back("-");
                }
            }
            table.row(row);
        }
        table.render(std::cout);
    }

    // Render the two panels as charts (the shape is the result).
    for (const char *axis : {"wall", "cpu"}) {
        const bool wall = std::string(axis) == "wall";
        support::AsciiChart chart(68, 18);
        chart.setTitle(wall ? "\nFigure 1(a): wall-clock LBO vs heap size"
                            : "\nFigure 1(b): task-clock LBO vs heap size");
        chart.setXLabel("heap size (x minheap)");
        chart.setYLabel(wall ? "normalized time overhead (LBO)"
                             : "normalized CPU overhead (LBO)");
        chart.setYRange(1.0, 2.0);  // the paper's y limits
        for (auto algorithm : sweep.collectors) {
            const std::string name = gc::algorithmName(algorithm);
            std::vector<std::pair<double, double>> pts;
            for (const auto &p : points) {
                if (p.collector == name && p.plotted) {
                    pts.emplace_back(p.factor, wall ? p.wall_geomean
                                                    : p.cpu_geomean);
                }
            }
            chart.addSeries(name, std::move(pts));
        }
        std::cout << chart.render();
    }

    std::cout <<
        "\nPaper reference points: best-case wall overhead ~9 % (G1 and\n"
        "Parallel at 6x), best-case CPU overhead ~15 % (Serial); newer\n"
        "collectors cost more CPU (Serial < Parallel < G1 < Shen/ZGC);\n"
        "overheads exceed 2x at the smallest heaps; ZGC (no compressed\n"
        "pointers) cannot complete the whole suite below ~2-3x.\n";
    return 0;
}
