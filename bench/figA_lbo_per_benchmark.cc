/**
 * @file
 * Appendix LBO figures (Figures 7, 9, 11, ...): per-benchmark lower
 * bounds on collector overheads (wall clock and task clock) as a
 * function of heap size, for every workload in the suite.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "harness/lbo_experiment.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

int
runFigALboPerBenchmark(report::ExperimentContext &context)
{
    harness::LboSweepOptions sweep;
    sweep.factors = {1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
    sweep.base = context.options;

    std::vector<std::string> selection = context.flags.positionals();
    if (selection.empty())
        selection = workloads::names();

    auto &curves = context.store.table(
        "lbo_per_benchmark",
        report::Schema{{"workload", report::Type::String},
                       {"collector", report::Type::String},
                       {"factor", report::Type::Double},
                       {"completed", report::Type::Bool},
                       {"wall_lbo", report::Type::Double},
                       {"cpu_lbo", report::Type::Double}});

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        std::cerr << "  sweeping " << name << "...\n";
        const auto result = harness::runLboSweep(workload, sweep);

        std::cout << "\n## " << name << " (min heap "
                  << support::fixed(workload.gc.gmd_mb, 0) << " MB)\n";
        std::vector<std::string> header = {"collector", "axis"};
        for (double f : sweep.factors)
            header.push_back(support::fixed(f, 1) + "x");
        bench::AsciiTable table(header);

        for (auto algorithm : sweep.collectors) {
            const std::string collector = gc::algorithmName(algorithm);
            for (const char *axis : {"wall", "cpu"}) {
                std::vector<std::string> row = {collector, axis};
                for (double f : sweep.factors) {
                    if (!result.completedAt(collector, f)) {
                        row.push_back("-");
                        continue;
                    }
                    const auto o =
                        result.analysis.overhead(collector, f);
                    row.push_back(bench::overhead(
                        std::string(axis) == "wall" ? o.wall : o.cpu));
                }
                table.row(row);
            }
            table.separator();
            for (double f : sweep.factors) {
                const bool done = result.completedAt(collector, f);
                const auto o =
                    done ? result.analysis.overhead(collector, f)
                         : metrics::LboOverhead{};
                curves.addRow({report::Value::str(name),
                               report::Value::str(collector),
                               report::Value::dbl(f),
                               report::Value::boolean(done),
                               report::Value::dbl(o.wall),
                               report::Value::dbl(o.cpu)});
            }
        }
        table.render(std::cout);
    }
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "figA_lbo_per_benchmark";
    e.title = "Per-benchmark LBO overheads";
    e.paper_ref = "appendix Figures 7, 9, 11, ...";
    e.description = "Appendix: per-benchmark LBO curves";
    e.quick_invocations = 2;
    e.quick_iterations = 2;
    e.run = runFigALboPerBenchmark;
    return e;
}()};

} // namespace
