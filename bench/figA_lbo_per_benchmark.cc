/**
 * @file
 * Appendix LBO figures (Figures 7, 9, 11, ...): per-benchmark lower
 * bounds on collector overheads (wall clock and task clock) as a
 * function of heap size, for every workload in the suite.
 */

#include "bench/bench_common.hh"
#include "harness/lbo_experiment.hh"
#include "workloads/registry.hh"

using namespace capo;

int
main(int argc, char **argv)
{
    auto flags = bench::standardFlags(
        "Appendix: per-benchmark LBO curves");
    flags.parse(argc, argv);

    bench::banner("Per-benchmark LBO overheads",
                  "appendix Figures 7, 9, 11, ...");

    harness::LboSweepOptions sweep;
    sweep.factors = {1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
    sweep.base = bench::optionsFromFlags(flags, 2, 2);

    std::vector<std::string> selection = flags.positionals();
    if (selection.empty())
        selection = workloads::names();

    for (const auto &name : selection) {
        const auto &workload = workloads::byName(name);
        std::cerr << "  sweeping " << name << "...\n";
        const auto result = harness::runLboSweep(workload, sweep);

        std::cout << "\n## " << name << " (min heap "
                  << support::fixed(workload.gc.gmd_mb, 0) << " MB)\n";
        support::TextTable table;
        std::vector<std::string> header = {"collector", "axis"};
        for (double f : sweep.factors)
            header.push_back(support::fixed(f, 1) + "x");
        std::vector<support::TextTable::Align> aligns(
            header.size(), support::TextTable::Align::Right);
        aligns[0] = support::TextTable::Align::Left;
        aligns[1] = support::TextTable::Align::Left;
        table.columns(header, aligns);

        for (auto algorithm : sweep.collectors) {
            const std::string collector = gc::algorithmName(algorithm);
            for (const char *axis : {"wall", "cpu"}) {
                std::vector<std::string> row = {collector, axis};
                for (double f : sweep.factors) {
                    if (!result.completedAt(collector, f)) {
                        row.push_back("-");
                        continue;
                    }
                    const auto o =
                        result.analysis.overhead(collector, f);
                    row.push_back(bench::overhead(
                        std::string(axis) == "wall" ? o.wall : o.cpu));
                }
                table.row(row);
            }
            table.separator();
        }
        table.render(std::cout);
    }
    return 0;
}
