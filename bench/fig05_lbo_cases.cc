/**
 * @file
 * Figure 5: per-benchmark LBO case studies — cassandra (task clock
 * diverges from wall clock as concurrent collectors soak up idle
 * cores) and lusearch (Shenandoah's pacing throttles the suite's
 * fastest allocator: very high wall overhead, lower task-clock
 * overhead).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "harness/lbo_experiment.hh"
#include "workloads/registry.hh"

using namespace capo;

namespace {

void
printCurves(const harness::WorkloadLbo &result,
            const std::vector<double> &factors, double gmd_mb)
{
    for (const char *axis : {"wall", "cpu"}) {
        const bool wall = std::string(axis) == "wall";
        std::cout << (wall ? "\n### Wall-clock overheads (LBO)\n"
                           : "\n### Total CPU overheads (task clock, "
                             "LBO)\n");
        std::vector<std::string> header = {"collector"};
        for (double f : factors) {
            header.push_back(support::fixed(f, 1) + "x (" +
                             support::fixed(f * gmd_mb, 0) + "MB)");
        }
        bench::AsciiTable table(header);
        for (const auto &collector : result.analysis.collectors()) {
            std::vector<std::string> row = {collector};
            for (double f : factors) {
                if (!result.completedAt(collector, f)) {
                    row.push_back("-");
                    continue;
                }
                const auto o = result.analysis.overhead(collector, f);
                row.push_back(bench::overhead(wall ? o.wall : o.cpu));
            }
            table.row(row);
        }
        table.render(std::cout);
    }
}

int
runFig05(report::ExperimentContext &context)
{
    harness::LboSweepOptions sweep;
    sweep.factors = {1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0};
    sweep.base = context.options;

    auto &cases = context.store.table(
        "lbo_cases",
        report::Schema{{"workload", report::Type::String},
                       {"collector", report::Type::String},
                       {"factor", report::Type::Double},
                       {"completed", report::Type::Bool},
                       {"wall_lbo", report::Type::Double},
                       {"cpu_lbo", report::Type::Double}});

    for (const char *name : {"cassandra", "lusearch"}) {
        const auto &workload = workloads::byName(name);
        std::cout << "\n## " << name << "\n";
        const auto result = harness::runLboSweep(workload, sweep);
        printCurves(result, sweep.factors, workload.gc.gmd_mb);
        for (const auto &collector : result.analysis.collectors()) {
            for (double f : sweep.factors) {
                const bool done = result.completedAt(collector, f);
                const auto o =
                    done ? result.analysis.overhead(collector, f)
                         : metrics::LboOverhead{};
                cases.addRow({report::Value::str(name),
                              report::Value::str(collector),
                              report::Value::dbl(f),
                              report::Value::boolean(done),
                              report::Value::dbl(o.wall),
                              report::Value::dbl(o.cpu)});
            }
        }
    }

    std::cout <<
        "\nPaper reference: cassandra's task-clock overheads far exceed\n"
        "its wall-clock overheads (collectors absorb idle cores);\n"
        "lusearch under Shenandoah shows the opposite: pacing throttles\n"
        "the mutator (wall > 2x) while task clock stays lower.\n";
    return 0;
}

const report::RegisterExperiment kRegister{[] {
    report::Experiment e;
    e.name = "fig05_lbo_cases";
    e.title = "LBO case studies: cassandra and lusearch";
    e.paper_ref = "Figure 5(a-d)";
    e.description =
        "Figure 5: cassandra and lusearch LBO case studies";
    e.run = runFig05;
    return e;
}()};

} // namespace
