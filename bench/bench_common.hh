/**
 * @file
 * Shared plumbing for the experiment-reproduction binaries.
 *
 * Each bench binary regenerates one table or figure from the paper.
 * By default they run in a reduced configuration (fewer invocations
 * and iterations) so the full set completes in minutes; pass --full
 * for the paper's methodology (5 iterations timing the last, 10
 * invocations, 95 % confidence intervals).
 */

#ifndef CAPO_BENCH_BENCH_COMMON_HH
#define CAPO_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "harness/runner.hh"
#include "support/flags.hh"
#include "support/strfmt.hh"
#include "support/table.hh"

namespace capo::bench {

/** Standard flags shared by every reproduction binary. */
inline support::Flags
standardFlags(const std::string &description)
{
    support::Flags flags(description);
    flags.addBool("full", false,
                  "use the paper's full methodology (10 invocations, "
                  "5 iterations) instead of the quick configuration");
    flags.addInt("invocations", 0,
                 "override the number of invocations (0 = preset)");
    flags.addInt("iterations", 0,
                 "override the number of iterations (0 = preset)");
    flags.addInt("seed", 0x5eed, "base random seed");
    return flags;
}

/** Experiment options derived from the standard flags. */
inline harness::ExperimentOptions
optionsFromFlags(const support::Flags &flags, int quick_invocations = 3,
                 int quick_iterations = 3)
{
    harness::ExperimentOptions options;
    if (flags.getBool("full")) {
        options.invocations = 10;
        options.iterations = 5;
    } else {
        options.invocations = quick_invocations;
        options.iterations = quick_iterations;
    }
    if (flags.getInt("invocations") > 0)
        options.invocations = static_cast<int>(flags.getInt("invocations"));
    if (flags.getInt("iterations") > 0)
        options.iterations = static_cast<int>(flags.getInt("iterations"));
    options.base_seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    return options;
}

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "# " << title << "\n# (reproduces " << paper_ref
              << " of 'Rethinking Java Performance Analysis', "
                 "ASPLOS'25)\n\n";
}

/** Format an LBO overhead value ("1.153"). */
inline std::string
overhead(double value)
{
    return support::fixed(value, 3);
}

/** Format a latency in ms with three significant figures. */
inline std::string
latencyMs(double ns)
{
    return support::fixed(ns / 1e6, 3);
}

} // namespace capo::bench

#endif // CAPO_BENCH_BENCH_COMMON_HH
