/**
 * @file
 * Shared helpers for the experiment-reproduction bodies.
 *
 * Each bench target regenerates one table or figure from the paper.
 * The binaries themselves are registry-driven (report/experiment.hh):
 * flag handling, --full presets, banners and artifact flushing all
 * live in the registry runner, so what remains here is just the
 * formatting and reporting helpers the experiment bodies share. All
 * file output goes through the context's ArtifactSink — bench code
 * never opens files directly.
 */

#ifndef CAPO_BENCH_BENCH_COMMON_HH
#define CAPO_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "report/artifact.hh"
#include "report/experiment.hh"
#include "report/table.hh"
#include "support/strfmt.hh"

namespace capo::bench {

/**
 * Presentation table for the experiment bodies, rendered through
 * report::ResultTable::renderAscii — the one table renderer (typed
 * store tables, capo-client output and bench stdout all agree).
 * Cells are pre-formatted strings; renderAscii right-aligns the
 * numeric-presentation columns. Replaces the hand-built
 * support::TextTable + per-column alignment lists every bench binary
 * used to maintain.
 */
class AsciiTable
{
  public:
    explicit AsciiTable(const std::vector<std::string> &headers)
    {
        std::vector<report::Column> columns;
        columns.reserve(headers.size());
        for (const auto &header : headers)
            columns.push_back({header, report::Type::String});
        table_ = report::ResultTable(
            report::Schema(std::move(columns)));
    }

    void
    row(std::vector<std::string> cells)
    {
        std::vector<report::Value> values;
        values.reserve(cells.size());
        for (auto &cell : cells)
            values.push_back(report::Value::str(std::move(cell)));
        table_.addRow(std::move(values));
    }

    /** Group gap: a blank row (alignment scans skip empty cells). */
    void
    separator()
    {
        row(std::vector<std::string>(table_.schema().size()));
    }

    void
    render(std::ostream &out) const
    {
        table_.renderAscii(out);
    }

  private:
    report::ResultTable table_;
};

/** Monotonic seconds for measuring harness throughput. */
inline double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Machine-readable benchmark report (BENCH_harness.json): flat
 * key/value JSON recording harness throughput (cells/sec, sim
 * events/sec) and the serial-vs-parallel speedup, for CI artifacts
 * and cross-commit comparison.
 */
class BenchJson
{
  public:
    void
    set(const std::string &key, double value)
    {
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "%.17g", value);
        fields_.emplace_back(key, buffer);
    }

    void
    set(const std::string &key, std::uint64_t value)
    {
        fields_.emplace_back(key, std::to_string(value));
    }

    void
    set(const std::string &key, int value)
    {
        fields_.emplace_back(key, std::to_string(value));
    }

    void
    set(const std::string &key, bool value)
    {
        fields_.emplace_back(key, value ? "true" : "false");
    }

    void
    set(const std::string &key, const std::string &value)
    {
        fields_.emplace_back(key, "\"" + value + "\"");
    }

    /** Write the report through the artifact sink; fatal-free (the
     *  sink retries and quarantines — a bench must not fail on an
     *  unwritable report path). */
    bool
    write(report::ArtifactSink &sink, const std::string &path) const
    {
        return sink.write(path, [this](std::ostream &out) {
            out << "{\n";
            for (std::size_t i = 0; i < fields_.size(); ++i) {
                out << "  \"" << fields_[i].first
                    << "\": " << fields_[i].second
                    << (i + 1 < fields_.size() ? "," : "") << "\n";
            }
            out << "}\n";
        });
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Format an LBO overhead value ("1.153"). */
inline std::string
overhead(double value)
{
    return support::fixed(value, 3);
}

/** Format a latency in ms with three significant figures. */
inline std::string
latencyMs(double ns)
{
    return support::fixed(ns / 1e6, 3);
}

} // namespace capo::bench

#endif // CAPO_BENCH_BENCH_COMMON_HH
