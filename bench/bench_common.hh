/**
 * @file
 * Shared plumbing for the experiment-reproduction binaries.
 *
 * Each bench binary regenerates one table or figure from the paper.
 * By default they run in a reduced configuration (fewer invocations
 * and iterations) so the full set completes in minutes; pass --full
 * for the paper's methodology (5 iterations timing the last, 10
 * invocations, 95 % confidence intervals).
 */

#ifndef CAPO_BENCH_BENCH_COMMON_HH
#define CAPO_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"
#include "support/flags.hh"
#include "support/strfmt.hh"
#include "support/table.hh"

namespace capo::bench {

/** Standard flags shared by every reproduction binary. */
inline support::Flags
standardFlags(const std::string &description)
{
    support::Flags flags(description);
    flags.addBool("full", false,
                  "use the paper's full methodology (10 invocations, "
                  "5 iterations) instead of the quick configuration");
    flags.addInt("invocations", 0,
                 "override the number of invocations (0 = preset)");
    flags.addInt("iterations", 0,
                 "override the number of iterations (0 = preset)");
    flags.addInt("seed", 0x5eed, "base random seed");
    flags.addInt("jobs", 1,
                 "cells/invocations to run concurrently (0 = all "
                 "hardware threads); results are identical for any "
                 "value");
    flags.addAlias("j", "jobs");
    return flags;
}

/** Experiment options derived from the standard flags. */
inline harness::ExperimentOptions
optionsFromFlags(const support::Flags &flags, int quick_invocations = 3,
                 int quick_iterations = 3)
{
    harness::ExperimentOptions options;
    if (flags.getBool("full")) {
        options.invocations = 10;
        options.iterations = 5;
    } else {
        options.invocations = quick_invocations;
        options.iterations = quick_iterations;
    }
    if (flags.getInt("invocations") > 0)
        options.invocations = static_cast<int>(flags.getInt("invocations"));
    if (flags.getInt("iterations") > 0)
        options.iterations = static_cast<int>(flags.getInt("iterations"));
    options.base_seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    options.jobs = static_cast<int>(flags.getInt("jobs"));
    return options;
}

/** Monotonic seconds for measuring harness throughput. */
inline double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Machine-readable benchmark report (BENCH_harness.json): flat
 * key/value JSON recording harness throughput (cells/sec, sim
 * events/sec) and the serial-vs-parallel speedup, for CI artifacts
 * and cross-commit comparison.
 */
class BenchJson
{
  public:
    void
    set(const std::string &key, double value)
    {
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "%.17g", value);
        fields_.emplace_back(key, buffer);
    }

    void
    set(const std::string &key, std::uint64_t value)
    {
        fields_.emplace_back(key, std::to_string(value));
    }

    void
    set(const std::string &key, int value)
    {
        fields_.emplace_back(key, std::to_string(value));
    }

    void
    set(const std::string &key, bool value)
    {
        fields_.emplace_back(key, value ? "true" : "false");
    }

    void
    set(const std::string &key, const std::string &value)
    {
        fields_.emplace_back(key, "\"" + value + "\"");
    }

    /** Write the report; fatal-free (a bench must not fail on an
     *  unwritable report path — it warns instead). */
    void
    write(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "warning: cannot write bench report to "
                      << path << "\n";
            return;
        }
        out << "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            out << "  \"" << fields_[i].first
                << "\": " << fields_[i].second
                << (i + 1 < fields_.size() ? "," : "") << "\n";
        }
        out << "}\n";
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "# " << title << "\n# (reproduces " << paper_ref
              << " of 'Rethinking Java Performance Analysis', "
                 "ASPLOS'25)\n\n";
}

/** Format an LBO overhead value ("1.153"). */
inline std::string
overhead(double value)
{
    return support::fixed(value, 3);
}

/** Format a latency in ms with three significant figures. */
inline std::string
latencyMs(double ns)
{
    return support::fixed(ns / 1e6, 3);
}

} // namespace capo::bench

#endif // CAPO_BENCH_BENCH_COMMON_HH
