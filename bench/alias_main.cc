/**
 * @file
 * Shared main() for the historical one-binary-per-figure targets:
 * each alias target compiles this file with CAPO_BENCH_EXPERIMENT set
 * to its registry name, so `./fig01_lbo_geomean --full` keeps working
 * exactly as before while the experiment logic lives in the registry
 * (see report/experiment.hh and the capo-bench multiplexer).
 */

#include "report/experiment.hh"

#ifndef CAPO_BENCH_EXPERIMENT
#error "alias targets must define CAPO_BENCH_EXPERIMENT"
#endif

int
main(int argc, char **argv)
{
    return capo::report::runExperimentMain(CAPO_BENCH_EXPERIMENT, argc,
                                           argv);
}
