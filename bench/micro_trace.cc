/**
 * @file
 * Microbenchmarks of the tracing hot paths (google-benchmark). The
 * whole design rests on instrumentation being cheap enough to leave
 * compiled in: an enabled span costs a ring-buffer store, an event in
 * a disabled category costs one branch on the category mask, and a
 * null sink costs one pointer test at the call site.
 */

#include <benchmark/benchmark.h>

#include "trace/hot_metrics.hh"
#include "trace/metrics_registry.hh"
#include "trace/sink.hh"

namespace {

using namespace capo;

/** Full cost of an enabled begin/end span pair. */
void
BM_TraceSpanEnabled(benchmark::State &state)
{
    trace::TraceSink sink;
    const auto track = sink.registerTrack("bench");
    const char *name = sink.internName("work");
    double t = 0.0;
    for (auto _ : state) {
        sink.beginSpan(track, trace::Category::Sim, name, t);
        sink.endSpan(track, trace::Category::Sim, name, t + 1.0);
        t += 2.0;
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TraceSpanEnabled);

/** An event whose category is filtered out: must be ~one branch. */
void
BM_TraceEmitFiltered(benchmark::State &state)
{
    trace::TraceSink::Options options;
    options.categories = static_cast<trace::CategoryMask>(
        trace::Category::Gc);
    trace::TraceSink sink(options);
    const auto track = sink.registerTrack("bench");
    const char *name = sink.internName("work");
    double t = 0.0;
    for (auto _ : state) {
        // Sim is not in the mask; wants() fails before any store.
        sink.instant(track, trace::Category::Sim, name, t);
        t += 1.0;
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitFiltered);

/** The disabled-tracing pattern instrumented code uses: null sink,
 *  one pointer test. */
void
BM_TraceDisabledNullSink(benchmark::State &state)
{
    trace::TraceSink *sink = nullptr;
    benchmark::DoNotOptimize(sink);
    double t = 0.0;
    for (auto _ : state) {
        if (sink)
            sink->instant(0, trace::Category::Sim, "work", t);
        t += 1.0;
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceDisabledNullSink);

/** Counter emission (the sampler's per-probe cost). */
void
BM_TraceCounter(benchmark::State &state)
{
    trace::TraceSink sink;
    const auto track = sink.registerTrack("counters");
    const char *name = sink.internName("heap.occupied_bytes");
    double t = 0.0;
    for (auto _ : state) {
        sink.counter(track, trace::Category::Metrics, name, t, t * 2.0);
        t += 1.0;
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceCounter);

/** Histogram record: bucket index is a log10 plus a floor. */
void
BM_HistogramRecord(benchmark::State &state)
{
    trace::Histogram histogram;
    double value = 1.0;
    for (auto _ : state) {
        histogram.record(value);
        value = value < 1e9 ? value * 1.001 : 1.0;
        benchmark::DoNotOptimize(histogram.count());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/** Disabled hot-tier observe: one relaxed load and a branch — the
 *  price every hot-path probe pays when nobody is measuring. This is
 *  the number the recorder stores as hot_disabled_ns in every
 *  committed BENCH snapshot. */
void
BM_HotObserveDisabled(benchmark::State &state)
{
    trace::hot::setEnabled(false);
    double value = 1.0;
    for (auto _ : state) {
        trace::hot::observe(trace::hot::TimerQueueDepth, value);
        value = value < 4096.0 ? value + 1.0 : 1.0;
        benchmark::DoNotOptimize(value);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotObserveDisabled);

/** Enabled hot-tier observe: a bounded constexpr-bound scan plus
 *  three relaxed fetch_adds; no mutex, no CAS loop. */
void
BM_HotObserveEnabled(benchmark::State &state)
{
    trace::hot::setEnabled(true);
    double value = 1.0;
    for (auto _ : state) {
        trace::hot::observe(trace::hot::TimerQueueDepth, value);
        value = value < 4096.0 ? value + 1.0 : 1.0;
        benchmark::DoNotOptimize(value);
    }
    trace::hot::setEnabled(false);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotObserveEnabled);

/** Disabled hot-tier counter bump (the batched flush path's unit). */
void
BM_HotCounterDisabled(benchmark::State &state)
{
    trace::hot::setEnabled(false);
    for (auto _ : state) {
        trace::hot::count(trace::hot::SimEvents, 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotCounterDisabled);

/** Enabled hot-tier observe under contention: all benchmark threads
 *  hammer the same histogram (run with --benchmark_threads). */
void
BM_HotObserveEnabledContended(benchmark::State &state)
{
    trace::hot::setEnabled(true);
    double value = static_cast<double>(state.thread_index() + 1);
    for (auto _ : state) {
        trace::hot::observe(trace::hot::PoolStealScan, value);
        value = value < 64.0 ? value + 1.0 : 1.0;
        benchmark::DoNotOptimize(value);
    }
    if (state.thread_index() == 0)
        trace::hot::setEnabled(false);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotObserveEnabledContended)->Threads(1)->Threads(4);

} // namespace

BENCHMARK_MAIN();
