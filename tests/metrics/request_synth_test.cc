/**
 * @file
 * Tests for request-latency synthesis over mutator rate timelines.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/request_synth.hh"
#include "metrics/summary.hh"

namespace capo::metrics {
namespace {

workloads::RequestProfile
profile(int count, int lanes, double sigma = 0.3)
{
    workloads::RequestProfile p;
    p.enabled = true;
    p.count = count;
    p.lanes = lanes;
    p.service_sigma = sigma;
    p.heavy_tail_fraction = 0.0;
    return p;
}

TEST(RequestSynthTest, FullRateFillsTheWindow)
{
    std::vector<sim::RateSegment> timeline = {{0.0, 1e9, 1.0}};
    const auto rec = synthesizeRequests(timeline, 1.0,
                                        profile(1000, 4), 0.0, 1e9,
                                        support::Rng(1));
    EXPECT_EQ(rec.size(), 1000u);
    // Each lane's requests tile the window back to back.
    EXPECT_NEAR(rec.spanEnd(), 1e9, 1e9 * 0.2);
    // No queueing: mean latency ~= capacity / per-lane count.
    const auto simple = rec.simpleLatencies();
    EXPECT_NEAR(mean(simple), 1e9 / 250.0, 1e9 / 250.0 * 0.05);
}

TEST(RequestSynthTest, RequestsChainPerLane)
{
    std::vector<sim::RateSegment> timeline = {{0.0, 1e9, 1.0}};
    const auto rec = synthesizeRequests(timeline, 1.0, profile(100, 1),
                                        0.0, 1e9, support::Rng(2));
    auto events = rec.events();
    std::sort(events.begin(), events.end(),
              [](const auto &a, const auto &b) {
                  return a.start < b.start;
              });
    for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_DOUBLE_EQ(events[i].start, events[i - 1].end);
}

TEST(RequestSynthTest, PauseStretchesOverlappingRequests)
{
    // Full speed, a 100 ms dead zone, full speed again.
    std::vector<sim::RateSegment> timeline = {
        {0.0, 450e6, 1.0}, {450e6, 550e6, 0.0}, {550e6, 1.1e9, 1.0}};
    const auto rec = synthesizeRequests(timeline, 1.0,
                                        profile(1000, 2, 0.05), 0.0,
                                        1.1e9, support::Rng(3));
    const auto simple = rec.simpleLatencies();
    const double worst =
        *std::max_element(simple.begin(), simple.end());
    const double median = quantile(simple, 0.5);
    // The requests crossing the pause absorb the full 100 ms.
    EXPECT_GT(worst, 100e6);
    EXPECT_LT(median, 3e6);
}

TEST(RequestSynthTest, SlowdownStretchesEverything)
{
    std::vector<sim::RateSegment> full = {{0.0, 1e9, 1.0}};
    std::vector<sim::RateSegment> half = {{0.0, 2e9, 0.5}};
    const auto fast = synthesizeRequests(full, 1.0,
                                         profile(400, 2, 0.05), 0.0,
                                         1e9, support::Rng(4));
    const auto slow = synthesizeRequests(half, 1.0,
                                         profile(400, 2, 0.05), 0.0,
                                         2e9, support::Rng(4));
    // Same capacity, so same demands; half rate doubles latencies.
    EXPECT_NEAR(mean(slow.simpleLatencies()),
                2.0 * mean(fast.simpleLatencies()),
                mean(fast.simpleLatencies()) * 0.1);
}

TEST(RequestSynthTest, DeterministicPerSeed)
{
    std::vector<sim::RateSegment> timeline = {{0.0, 1e9, 1.0}};
    const auto a = synthesizeRequests(timeline, 1.0, profile(500, 8),
                                      0.0, 1e9, support::Rng(9));
    const auto b = synthesizeRequests(timeline, 1.0, profile(500, 8),
                                      0.0, 1e9, support::Rng(9));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_DOUBLE_EQ(a.events()[i].start, b.events()[i].start);
        ASSERT_DOUBLE_EQ(a.events()[i].end, b.events()[i].end);
    }
}

TEST(RequestSynthTest, BaselineRateNormalizes)
{
    // A rate of 0.5 with baseline 0.5 is "full speed".
    std::vector<sim::RateSegment> timeline = {{0.0, 1e9, 0.5}};
    const auto rec = synthesizeRequests(timeline, 0.5,
                                        profile(200, 2, 0.05), 0.0,
                                        1e9, support::Rng(5));
    EXPECT_NEAR(mean(rec.simpleLatencies()), 1e9 / 100.0,
                1e9 / 100.0 * 0.1);
}

class RequestSynthLanes : public ::testing::TestWithParam<int>
{
};

TEST_P(RequestSynthLanes, EventCountAndOrderInvariants)
{
    const int lanes = GetParam();
    std::vector<sim::RateSegment> timeline = {
        {0.0, 5e8, 1.0}, {5e8, 6e8, 0.0}, {6e8, 1.2e9, 0.8}};
    const auto rec = synthesizeRequests(timeline, 1.0,
                                        profile(1200, lanes), 0.0,
                                        1.2e9, support::Rng(6));
    EXPECT_EQ(rec.size(),
              static_cast<std::size_t>(1200 / lanes * lanes));
    for (const auto &e : rec.events()) {
        ASSERT_GE(e.end, e.start);
        ASSERT_GE(e.start, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RequestSynthLanes,
                         ::testing::Values(1, 2, 7, 16, 32));

// ---------------------------------------------------------------------
// Open-loop (SPECjbb-style) synthesis and critical-jOPS.
// ---------------------------------------------------------------------

TEST(OpenLoopTest, LowLoadLatencyIsServiceTime)
{
    std::vector<sim::RateSegment> timeline = {{0.0, 1e9, 1.0}};
    auto p = profile(0, 4, 0.05);
    // 4 lanes, 1 ms service, 100 req/s: utilization 2.5 %.
    const auto rec = synthesizeOpenLoopRequests(
        timeline, 1.0, p, 0.0, 1e9, 100.0, 1e6, support::Rng(1));
    EXPECT_NEAR(static_cast<double>(rec.size()), 100.0, 1.0);
    EXPECT_NEAR(quantile(rec.intendedLatencies(), 0.5), 1e6, 2e5);
    // No queueing at 2.5 % utilization: both stamps agree.
    EXPECT_NEAR(quantile(rec.simpleLatencies(), 0.5),
                quantile(rec.intendedLatencies(), 0.5), 1e3);
}

TEST(OpenLoopTest, OverloadGrowsTheQueue)
{
    std::vector<sim::RateSegment> timeline = {{0.0, 1e9, 1.0}};
    auto p = profile(0, 2, 0.05);
    // Capacity 2 lanes / 1 ms = 2000 req/s; inject 4000.
    const auto rec = synthesizeOpenLoopRequests(
        timeline, 1.0, p, 0.0, 1e9, 4000.0, 1e6, support::Rng(2));
    // The last arrivals wait behind ~half the run's backlog; only the
    // arrival stamp sees it (the service stamp is the CO-blind view).
    EXPECT_GT(quantile(rec.intendedLatencies(), 0.99), 100e6);
    EXPECT_LT(quantile(rec.simpleLatencies(), 0.5), 10e6);
}

TEST(OpenLoopTest, PauseCascadesIntoQueuedArrivals)
{
    // 100 ms dead zone mid-run.
    std::vector<sim::RateSegment> paused = {
        {0.0, 450e6, 1.0}, {450e6, 550e6, 0.0}, {550e6, 1.1e9, 1.0}};
    std::vector<sim::RateSegment> clean = {{0.0, 1.1e9, 1.0}};
    auto p = profile(0, 4, 0.05);
    const auto with_pause = synthesizeOpenLoopRequests(
        paused, 1.0, p, 0.0, 1.1e9, 1000.0, 1e6, support::Rng(3));
    const auto without = synthesizeOpenLoopRequests(
        clean, 1.0, p, 0.0, 1.1e9, 1000.0, 1e6, support::Rng(3));
    // ~100 arrivals land in or behind the pause; p90 inflates without
    // any metering transform.
    EXPECT_GT(quantile(with_pause.intendedLatencies(), 0.95),
              10.0 * quantile(without.intendedLatencies(), 0.95));
}

TEST(CriticalJopsTest, FindsTheSlaKnee)
{
    // Synthetic latency model: p99 = 1 ms below 1000 req/s, then
    // grows linearly to 200 ms at 2000 req/s.
    auto p99 = [](double rate) {
        if (rate <= 1000.0)
            return 1e6;
        return 1e6 + (rate - 1000.0) * 199e6 / 1000.0;
    };
    // SLA 100 ms -> rate ~1497; SLA 10 ms -> rate ~1045.
    const double jops =
        criticalJops(p99, {10e6, 100e6}, 4000.0);
    EXPECT_NEAR(jops, std::sqrt(1045.0 * 1497.0), 40.0);
}

TEST(CriticalJopsTest, UnconstrainedLoadReturnsBracket)
{
    auto flat = [](double) { return 1e6; };
    EXPECT_DOUBLE_EQ(criticalJops(flat, {10e6}, 5000.0), 5000.0);
}

} // namespace
} // namespace capo::metrics
