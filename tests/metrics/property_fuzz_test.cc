/**
 * @file
 * Randomized property tests over the methodology metrics: for
 * arbitrary (seeded) inputs, the defining invariants of LBO and
 * metered latency must hold, and the file-based export paths must
 * round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "metrics/export.hh"
#include "metrics/latency.hh"
#include "metrics/lbo.hh"
#include "support/rng.hh"

namespace capo::metrics {
namespace {

class LboFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(LboFuzz, DistillationInvariantsHoldForRandomCosts)
{
    support::Rng rng(GetParam());
    LboAnalysis lbo;
    const char *collectors[] = {"A", "B", "C", "D"};
    for (const char *collector : collectors) {
        for (double factor : {1.0, 2.0, 4.0}) {
            RunCost cost;
            cost.wall = rng.uniform(1e8, 1e10);
            cost.cpu = cost.wall * rng.uniform(1.0, 16.0);
            cost.stw_wall = cost.wall * rng.uniform(0.0, 0.5);
            cost.stw_cpu = cost.cpu * rng.uniform(0.0, 0.5);
            lbo.add(collector, factor, cost);
        }
    }

    // The baselines are the minimum residues: every configuration's
    // residue is >= baseline, so every configuration's *total* is too
    // (overheads can never dip below the residue ratio, and the
    // configuration defining the baseline has overhead >= 1).
    double min_wall_overhead = 1e300;
    double min_cpu_overhead = 1e300;
    for (const char *collector : collectors) {
        for (double factor : lbo.factors(collector)) {
            const auto o = lbo.overhead(collector, factor);
            ASSERT_GE(o.wall, 1.0);
            ASSERT_GE(o.cpu, 1.0);
            min_wall_overhead = std::min(min_wall_overhead, o.wall);
            min_cpu_overhead = std::min(min_cpu_overhead, o.cpu);
        }
    }
    // Some configuration sits close to the baseline: its overhead is
    // exactly total/residue of the minimal-residue config.
    EXPECT_LT(min_wall_overhead, 1.0 / (1.0 - 0.5) + 1e-9);
    EXPECT_LT(min_cpu_overhead, 1.0 / (1.0 - 0.5) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LboFuzz,
                         ::testing::Values(1, 7, 42, 1337, 90210));

class MeteredFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(MeteredFuzz, MeteredDominatesSimpleAndLimitsHold)
{
    support::Rng rng(GetParam());
    LatencyRecorder rec;
    double t = 0.0;
    const int n = 500 + static_cast<int>(rng.uniformInt(2000));
    for (int i = 0; i < n; ++i) {
        // Bursty arrivals with occasional long gaps.
        t += rng.uniform() < 0.05 ? rng.exponential(5000.0)
                                  : rng.exponential(100.0);
        rec.record(t, t + rng.exponential(80.0));
    }

    std::vector<LatencyEvent> by_start = rec.events();
    std::sort(by_start.begin(), by_start.end(),
              [](const auto &a, const auto &b) {
                  return a.start < b.start;
              });

    for (double window : {0.0, 10.0, 1000.0, 50000.0}) {
        const auto synth = rec.syntheticStarts(window);
        const auto metered = rec.meteredLatencies(window);
        ASSERT_EQ(synth.size(), by_start.size());

        double prev = -1e300;
        for (std::size_t i = 0; i < synth.size(); ++i) {
            // Monotone synthetic starts within the observed span.
            ASSERT_GE(synth[i], prev - 1e-6);
            prev = synth[i];
            ASSERT_GE(synth[i], by_start.front().start - 1e-6);
            ASSERT_LE(synth[i], by_start.back().start + 1e-6);
            // Metered >= simple, event by event.
            ASSERT_GE(metered[i] + 1e-9, by_start[i].latency());
        }
    }

    // Tiny window: metered == simple.
    const auto tiny = rec.meteredLatencies(1e-9);
    for (std::size_t i = 0; i < tiny.size(); ++i)
        ASSERT_NEAR(tiny[i], by_start[i].latency(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeteredFuzz,
                         ::testing::Values(3, 17, 99, 2024));

TEST(ExportFileTest, WriteCsvFileRoundTrips)
{
    const std::string path = "/tmp/capo_export_test.csv";
    LatencyRecorder rec;
    rec.record(0.0, 5.0);
    rec.record(10.0, 30.0);
    writeCsvFile(path, [&](std::ostream &out) {
        exportLatencyCsv(rec, 0.0, out);
    });

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "intended_ns,start_ns,end_ns,intended_lat_ns,simple_ns,metered_ns");
    int rows = 0;
    std::string line;
    while (std::getline(in, line))
        rows += !line.empty();
    EXPECT_EQ(rows, 2);
    std::remove(path.c_str());
}

TEST(ExportFileDeathTest, UnwritablePathIsFatal)
{
    EXPECT_EXIT(writeCsvFile("/nonexistent/dir/file.csv",
                             [](std::ostream &) {}),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace capo::metrics
