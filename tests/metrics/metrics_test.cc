/**
 * @file
 * Tests for the methodology metrics: summary statistics, simple and
 * metered latency, MMU, and LBO distillation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "metrics/latency.hh"
#include "metrics/lbo.hh"
#include "metrics/mmu.hh"
#include "metrics/summary.hh"
#include "support/rng.hh"

namespace capo::metrics {
namespace {

TEST(SummaryTest, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(sampleStddev({2.0, 4.0, 6.0}), 2.0);
    EXPECT_DOUBLE_EQ(sampleStddev({5.0}), 0.0);
}

TEST(SummaryTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // Geomean is always <= mean (AM-GM).
    EXPECT_LE(geomean({1.0, 2.0, 10.0}), mean({1.0, 2.0, 10.0}));
}

TEST(SummaryTest, ConfidenceIntervalUsesStudentT)
{
    // n=2, dof=1: t = 12.706.
    const std::vector<double> two = {10.0, 12.0};
    const double sd = sampleStddev(two);
    EXPECT_NEAR(confidenceHalfWidth95(two),
                12.706 * sd / std::sqrt(2.0), 1e-9);
    EXPECT_DOUBLE_EQ(confidenceHalfWidth95({5.0}), 0.0);
}

TEST(SummaryTest, QuantileInterpolates)
{
    std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(quantile(v, 2.0 / 3.0), 30.0);
}

// ---------------------------------------------------------------------
// Latency.
// ---------------------------------------------------------------------

TEST(LatencyTest, SimpleLatenciesAreDurations)
{
    LatencyRecorder rec;
    rec.record(0.0, 5.0);
    rec.record(10.0, 12.0);
    const auto simple = rec.simpleLatencies();
    ASSERT_EQ(simple.size(), 2u);
    EXPECT_DOUBLE_EQ(simple[0], 5.0);
    EXPECT_DOUBLE_EQ(simple[1], 2.0);
    EXPECT_DOUBLE_EQ(rec.spanBegin(), 0.0);
    EXPECT_DOUBLE_EQ(rec.spanEnd(), 12.0);
}

/** Events arriving uniformly: metered == simple for any window. */
TEST(LatencyTest, UniformArrivalsMeteredEqualsSimple)
{
    LatencyRecorder rec;
    for (int i = 0; i < 1000; ++i) {
        const double start = i * 100.0;
        rec.record(start, start + 30.0);
    }
    // Residual deviation is bounded by half the inter-arrival gap
    // (rank quantization) for *any* window size — in particular it
    // must not scale with the window.
    for (double window : {0.0, 500.0, 5000.0, 50000.0}) {
        const auto metered = rec.meteredLatencies(window);
        for (double m : metered) {
            ASSERT_NEAR(m, 30.0, 51.0) << "window " << window;
        }
    }
}

/** Metered latency can never be below simple latency. */
TEST(LatencyTest, MeteredNeverBelowSimple)
{
    support::Rng rng(3);
    LatencyRecorder rec;
    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
        t += rng.exponential(50.0);
        rec.record(t, t + rng.exponential(20.0));
    }
    auto simple = rec.simpleLatencies();
    // Pair by start order.
    std::vector<LatencyEvent> by_start = rec.events();
    std::sort(by_start.begin(), by_start.end(),
              [](const auto &a, const auto &b) {
                  return a.start < b.start;
              });
    for (double window : {0.0, 1.0, 100.0, 10000.0}) {
        const auto metered = rec.meteredLatencies(window);
        ASSERT_EQ(metered.size(), by_start.size());
        for (std::size_t i = 0; i < metered.size(); ++i) {
            ASSERT_GE(metered[i] + 1e-9, by_start[i].latency())
                << "window " << window << " event " << i;
        }
    }
}

/** A tiny window reproduces simple latency. */
TEST(LatencyTest, TinyWindowIsSimple)
{
    support::Rng rng(5);
    LatencyRecorder rec;
    double t = 0.0;
    for (int i = 0; i < 500; ++i) {
        t += rng.exponential(100.0);
        rec.record(t, t + 10.0);
    }
    const auto metered = rec.meteredLatencies(1e-6);
    for (double m : metered)
        ASSERT_NEAR(m, 10.0, 1e-3);
}

/** Full smoothing spreads synthetic starts uniformly. */
TEST(LatencyTest, FullSmoothingIsUniform)
{
    LatencyRecorder rec;
    // Bursty arrivals: all in the first tenth of the span except the
    // last event.
    for (int i = 0; i < 99; ++i)
        rec.record(i * 1.0, i * 1.0 + 0.5);
    rec.record(1000.0, 1000.5);

    const auto synth = rec.syntheticStarts(0.0);
    ASSERT_EQ(synth.size(), 100u);
    // Uniform midpoint spacing over [0, 1000].
    const double step = 1000.0 / 100.0;
    for (std::size_t i = 1; i < synth.size(); ++i)
        ASSERT_NEAR(synth[i] - synth[i - 1], step, 1e-9);
}

/** Synthetic starts are monotone for any window. */
TEST(LatencyTest, SyntheticStartsMonotone)
{
    support::Rng rng(7);
    LatencyRecorder rec;
    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
        t += rng.heavyTail(10.0, 2.1);
        rec.record(t, t + 1.0);
    }
    for (double window : {1.0, 50.0, 1000.0, 1e6}) {
        const auto synth = rec.syntheticStarts(window);
        for (std::size_t i = 1; i < synth.size(); ++i)
            ASSERT_LE(synth[i - 1], synth[i] + 1e-9);
    }
}

/**
 * The defining scenario: a pause creates a backlog. Metered latency
 * charges the queueing delay to events behind the pause; simple
 * latency does not.
 */
TEST(LatencyTest, PauseBacklogInflatesMeteredTail)
{
    LatencyRecorder rec;
    double t = 0.0;
    // 1000 events at a steady 1 ms service rate, with a 200 ms pause
    // in the middle: events after the pause start late but each takes
    // the usual 1 ms.
    for (int i = 0; i < 1000; ++i) {
        if (i == 500)
            t += 200.0;  // the pause delays the start of event 500+
        rec.record(t, t + 1.0);
        t += 1.0;
    }
    const auto simple = rec.simpleLatencies();
    const double simple_max =
        *std::max_element(simple.begin(), simple.end());
    EXPECT_NEAR(simple_max, 1.0, 1e-9);

    const auto metered = rec.meteredLatencies(0.0);  // full smoothing
    const double metered_max =
        *std::max_element(metered.begin(), metered.end());
    // The first event after the pause waited ~100 ms against its
    // uniform schedule (the pause shifts uniform starts by half).
    EXPECT_GT(metered_max, 50.0);
}

TEST(LatencyTest, PercentileCurveMatchesPaperPoints)
{
    std::vector<double> lat;
    for (int i = 1; i <= 1000; ++i)
        lat.push_back(static_cast<double>(i));
    const auto curve = percentileCurve(lat);
    ASSERT_EQ(curve.size(), paperPercentiles().size());
    EXPECT_DOUBLE_EQ(curve.front().second, 1.0);    // p0 = min
    EXPECT_NEAR(curve[1].second, 500.5, 0.01);      // median
    EXPECT_NEAR(curve[2].second, 900.1, 0.5);       // p90
    EXPECT_DOUBLE_EQ(curve.back().first, 0.999999);
}

// ---------------------------------------------------------------------
// MMU.
// ---------------------------------------------------------------------

TEST(MmuTest, NoPausesGivesFullUtilization)
{
    Mmu mmu({}, 0.0, 1000.0);
    EXPECT_DOUBLE_EQ(mmu.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(mmu.at(1000.0), 1.0);
}

TEST(MmuTest, WindowInsidePauseIsZero)
{
    Mmu mmu({{100.0, 200.0}}, 0.0, 1000.0);
    EXPECT_DOUBLE_EQ(mmu.at(50.0), 0.0);
    EXPECT_DOUBLE_EQ(mmu.at(100.0), 0.0);
    // Window of 200: at worst 100 of pause -> utilization 0.5.
    EXPECT_DOUBLE_EQ(mmu.at(200.0), 0.5);
    // Whole run: 10% pause.
    EXPECT_DOUBLE_EQ(mmu.at(1000.0), 0.9);
}

/**
 * Cheng & Blelloch's point (paper Figure 2): many short pauses can be
 * as bad as one long pause at small windows, even though the maximum
 * pause is 10x smaller.
 */
TEST(MmuTest, ShortPauseTrainsHurtLikeLongPauses)
{
    // One 100 ms pause.
    Mmu one({{400.0, 500.0}}, 0.0, 1000.0);
    // Ten 10 ms pauses back to back with 1 ms gaps.
    std::vector<std::pair<double, double>> train;
    for (int i = 0; i < 10; ++i) {
        const double b = 400.0 + i * 11.0;
        train.emplace_back(b, b + 10.0);
    }
    Mmu many(train, 0.0, 1000.0);

    EXPECT_DOUBLE_EQ(one.maxPause(), 100.0);
    EXPECT_DOUBLE_EQ(many.maxPause(), 10.0);
    // Yet over a 110 ms window the utilization collapse is similar.
    EXPECT_LT(many.at(110.0), 0.12);
    EXPECT_DOUBLE_EQ(one.at(110.0), 10.0 / 110.0);
}

TEST(MmuTest, MonotoneNondecreasingInWindow)
{
    std::vector<std::pair<double, double>> pauses;
    support::Rng rng(13);
    double t = 0.0;
    for (int i = 0; i < 50; ++i) {
        t += rng.exponential(100.0);
        const double end = t + rng.exponential(8.0);
        pauses.emplace_back(t, end);
        t = end;
    }
    Mmu mmu(pauses, 0.0, t + 100.0);
    double prev = 0.0;
    for (double w = 1.0; w < 5000.0; w *= 1.7) {
        const double u = mmu.at(w);
        ASSERT_GE(u + 1e-9, prev) << "window " << w;
        // Property only holds monotonically in the limit; allow the
        // classic MMU non-monotonicity by tracking the lower envelope.
        prev = std::max(prev * 0.98, u * 0.0);
        ASSERT_GE(u, 0.0);
        ASSERT_LE(u, 1.0);
    }
}

TEST(MmuTest, MergesOverlappingPauses)
{
    Mmu mmu({{100.0, 200.0}, {150.0, 250.0}}, 0.0, 1000.0);
    EXPECT_DOUBLE_EQ(mmu.totalPause(), 150.0);
    EXPECT_DOUBLE_EQ(mmu.maxPause(), 150.0);
}

// ---------------------------------------------------------------------
// LBO.
// ---------------------------------------------------------------------

TEST(LboTest, DistillsMinimumResidue)
{
    LboAnalysis lbo;
    lbo.add("A", 2.0, RunCost{100.0, 400.0, 20.0, 60.0});
    lbo.add("B", 2.0, RunCost{ 90.0, 500.0, 5.0, 40.0});
    // Baselines: wall = min(80, 85) = 80; cpu = min(340, 460) = 340.
    EXPECT_DOUBLE_EQ(lbo.baselineWall(), 80.0);
    EXPECT_DOUBLE_EQ(lbo.baselineCpu(), 340.0);

    const auto oa = lbo.overhead("A", 2.0);
    EXPECT_DOUBLE_EQ(oa.wall, 100.0 / 80.0);
    EXPECT_DOUBLE_EQ(oa.cpu, 400.0 / 340.0);
}

TEST(LboTest, OverheadAtLeastResidueRatio)
{
    // The configuration defining the baseline still has overhead >= 1.
    LboAnalysis lbo;
    lbo.add("A", 1.0, RunCost{100.0, 100.0, 10.0, 10.0});
    lbo.add("A", 2.0, RunCost{95.0, 95.0, 3.0, 3.0});
    for (double f : lbo.factors("A")) {
        const auto o = lbo.overhead("A", f);
        EXPECT_GE(o.wall, 1.0);
        EXPECT_GE(o.cpu, 1.0);
    }
}

TEST(LboTest, FactorsAndCollectorsEnumerate)
{
    LboAnalysis lbo;
    lbo.add("Serial", 2.0, RunCost{10.0, 10.0, 1.0, 1.0});
    lbo.add("Serial", 1.0, RunCost{12.0, 12.0, 3.0, 3.0});
    lbo.add("G1", 1.0, RunCost{11.0, 14.0, 1.0, 2.0});
    EXPECT_EQ(lbo.collectors(),
              (std::vector<std::string>{"Serial", "G1"}));
    EXPECT_EQ(lbo.factors("Serial"),
              (std::vector<double>{1.0, 2.0}));
    EXPECT_TRUE(lbo.has("G1", 1.0));
    EXPECT_FALSE(lbo.has("G1", 2.0));
}

} // namespace
} // namespace capo::metrics
