/**
 * @file
 * Edge-case tests for the CSV exporters: empty inputs, single-event
 * recorders, degenerate smoothing windows, and golden header rows so a
 * column rename can't silently break downstream plotting scripts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "metrics/export.hh"
#include "metrics/latency.hh"
#include "runtime/gc_event_log.hh"
#include "trace/metrics_registry.hh"

namespace capo::metrics {
namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::stringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        lines.push_back(line);
    return lines;
}

TEST(LatencyExportEdgeTest, EmptyRecorderWritesHeaderOnly)
{
    LatencyRecorder recorder;
    std::stringstream out;
    EXPECT_EQ(exportLatencyCsv(recorder, 100e6, out), 0u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "intended_ns,start_ns,end_ns,intended_lat_ns,simple_ns,metered_ns");
}

TEST(LatencyExportEdgeTest, SingleEventRoundTrips)
{
    LatencyRecorder recorder;
    recorder.record(100.0, 350.0);
    std::stringstream out;
    EXPECT_EQ(exportLatencyCsv(recorder, 100e6, out), 1u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1], "100,100,350,250,250,250");
}

TEST(LatencyExportEdgeTest, ZeroWindowSelectsFullSmoothing)
{
    // window_ns = 0 must not divide by zero; it selects full smoothing.
    LatencyRecorder recorder;
    recorder.record(0.0, 10.0);
    recorder.record(100.0, 130.0);
    recorder.record(200.0, 260.0);
    std::stringstream out;
    EXPECT_EQ(exportLatencyCsv(recorder, 0.0, out), 3u);

    const auto full = recorder.meteredLatencies(0.0);
    ASSERT_EQ(full.size(), 3u);
    for (double latency : full)
        EXPECT_GE(latency, 0.0);
}

TEST(PercentileExportEdgeTest, EmptyAndHeader)
{
    std::stringstream out;
    exportPercentileCsv({}, out);
    const auto lines = splitLines(out.str());
    ASSERT_GE(lines.size(), 1u);
    EXPECT_EQ(lines[0], "percentile,latency_ms");
}

TEST(HeapTimelineExportEdgeTest, EmptyLogWritesHeaderOnly)
{
    runtime::GcEventLog log;
    std::stringstream out;
    EXPECT_EQ(exportHeapTimelineCsv(log, out), 0u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0],
              "end_ns,kind,post_gc_bytes,reclaimed_bytes,traced_bytes");
}

TEST(MetricsExportEdgeTest, EmptyRegistryWritesHeaderOnly)
{
    trace::MetricsRegistry registry;
    std::stringstream out;
    EXPECT_EQ(exportMetricsCsv(registry, out), 0u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "name,kind,count,min,mean,max,stddev,last");
}

TEST(MetricsExportEdgeTest, CounterGaugeHistogramRows)
{
    trace::MetricsRegistry registry;
    registry.counter("events").add(7.0);
    registry.gauge("level").set(0.25);
    auto &h = registry.histogram("pause");
    h.record(2.0);
    h.record(4.0);

    std::stringstream out;
    EXPECT_EQ(exportMetricsCsv(registry, out), 3u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[1], "events,counter,1,7,7,7,0,7");
    EXPECT_EQ(lines[2], "level,gauge,1,0.25,0.25,0.25,0,0.25");
    EXPECT_EQ(lines[3], "pause,histogram,2,2,3,4,1,4");
}

TEST(MetricsExportEdgeTest, UnsetGaugeReportsZeroCount)
{
    trace::MetricsRegistry registry;
    registry.gauge("never-set");
    std::stringstream out;
    EXPECT_EQ(exportMetricsCsv(registry, out), 1u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1], "never-set,gauge,0,0,0,0,0,0");
}

TEST(MetricsExportEdgeTest, EmptyHistogramRowIsAllZeros)
{
    trace::MetricsRegistry registry;
    registry.histogram("quiet");
    std::stringstream out;
    EXPECT_EQ(exportMetricsCsv(registry, out), 1u);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1], "quiet,histogram,0,0,0,0,0,0");
}

} // namespace
} // namespace capo::metrics
