/**
 * @file
 * Tests for the footprint extension metric and the CSV export paths.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/export.hh"
#include "metrics/footprint.hh"

namespace capo::metrics {
namespace {

runtime::GcEventLog
sawtoothLog()
{
    // Collections at t = 1s, 2s, 3s: heap climbs from a 100-byte
    // floor to 300 bytes before each collection.
    runtime::GcEventLog log;
    for (int i = 1; i <= 3; ++i) {
        runtime::CycleRecord cycle;
        cycle.begin = i * 1e9 - 1e6;
        cycle.end = i * 1e9;
        cycle.kind = runtime::GcPhase::YoungPause;
        cycle.post_gc_bytes = 100.0;
        cycle.reclaimed = 200.0;
        cycle.traced = 50.0;
        log.recordCycle(cycle);
    }
    return log;
}

TEST(FootprintTest, SawtoothAveragesToMidpoint)
{
    const auto log = sawtoothLog();
    const auto summary = integrateFootprint(log, 0.0, 3e9);
    EXPECT_EQ(summary.samples, 3u);
    EXPECT_DOUBLE_EQ(summary.peak_bytes, 300.0);
    EXPECT_DOUBLE_EQ(summary.trough_bytes, 100.0);
    // Every trapezoid spans floor 100 -> pre 300: average 200.
    EXPECT_NEAR(summary.average_bytes, 200.0, 1.0);
    EXPECT_NEAR(summary.byte_seconds, 200.0 * 3.0, 5.0);
    EXPECT_DOUBLE_EQ(summary.span_seconds, 3.0);
}

TEST(FootprintTest, EmptyLogYieldsZero)
{
    runtime::GcEventLog log;
    const auto summary = integrateFootprint(log, 0.0, 1e9);
    EXPECT_EQ(summary.samples, 0u);
    EXPECT_DOUBLE_EQ(summary.byte_seconds, 0.0);
}

TEST(FootprintTest, WindowClipsSamples)
{
    const auto log = sawtoothLog();
    const auto summary = integrateFootprint(log, 1.5e9, 2.5e9);
    EXPECT_EQ(summary.samples, 1u);  // only the t=2s collection
}

TEST(ExportTest, LatencyCsvHasOneRowPerEvent)
{
    LatencyRecorder rec;
    rec.record(0.0, 10.0);
    rec.record(20.0, 35.0);
    std::ostringstream out;
    const auto rows = exportLatencyCsv(rec, 0.0, out);
    EXPECT_EQ(rows, 2u);
    const std::string text = out.str();
    EXPECT_NE(text.find("intended_ns,start_ns,end_ns,intended_lat_ns,simple_ns,metered_ns"),
              std::string::npos);
    EXPECT_NE(text.find("20,20,35,15,15"), std::string::npos);
}

TEST(ExportTest, PercentileCsvCoversPaperPoints)
{
    std::vector<double> latencies;
    for (int i = 1; i <= 100; ++i)
        latencies.push_back(i * 1e6);
    std::ostringstream out;
    const auto rows = exportPercentileCsv(latencies, out);
    EXPECT_EQ(rows, paperPercentiles().size());
    EXPECT_NE(out.str().find("percentile,latency_ms"),
              std::string::npos);
}

TEST(ExportTest, LboCsvListsEveryConfiguration)
{
    LboAnalysis lbo;
    lbo.add("Serial", 2.0, RunCost{100.0, 200.0, 10.0, 10.0});
    lbo.add("Serial", 4.0, RunCost{90.0, 180.0, 5.0, 5.0});
    lbo.add("G1", 2.0, RunCost{95.0, 250.0, 8.0, 30.0});
    std::ostringstream out;
    EXPECT_EQ(exportLboCsv(lbo, out), 3u);
    EXPECT_NE(out.str().find("Serial,2"), std::string::npos);
    EXPECT_NE(out.str().find("G1,2"), std::string::npos);
}

TEST(ExportTest, HeapTimelineCsvUsesPhaseNames)
{
    const auto log = sawtoothLog();
    std::ostringstream out;
    EXPECT_EQ(exportHeapTimelineCsv(log, out), 3u);
    EXPECT_NE(out.str().find("young"), std::string::npos);
}

} // namespace
} // namespace capo::metrics
