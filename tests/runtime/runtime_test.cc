/**
 * @file
 * Tests for the managed-runtime layer: GC event log, world control,
 * mutator execution and the execution orchestrator (with a trivial
 * always-grant collector).
 */

#include <gtest/gtest.h>

#include "runtime/execution.hh"
#include "runtime/gc_event_log.hh"
#include "runtime/mutator.hh"
#include "runtime/world.hh"

namespace capo::runtime {
namespace {

TEST(GcEventLogTest, PhaseAccounting)
{
    GcEventLog log;
    auto t1 = log.beginPhase(100.0, GcPhase::YoungPause);
    log.endPhase(t1, 150.0, 400.0);
    auto t2 = log.beginPhase(200.0, GcPhase::Concurrent);
    log.endPhase(t2, 300.0, 800.0);
    auto t3 = log.beginPhase(400.0, GcPhase::FullPause);
    log.endPhase(t3, 480.0, 160.0);

    EXPECT_DOUBLE_EQ(log.stwWall(), 50.0 + 80.0);
    EXPECT_DOUBLE_EQ(log.stwCpu(), 400.0 + 160.0);
    EXPECT_DOUBLE_EQ(log.totalGcCpu(), 1360.0);
    EXPECT_DOUBLE_EQ(log.maxPause(), 80.0);
    EXPECT_EQ(log.pauseCount(), 2u);
    EXPECT_EQ(log.stwIntervals().size(), 2u);
}

TEST(GcEventLogTest, WindowedQueriesClipProportionally)
{
    GcEventLog log;
    auto t = log.beginPhase(100.0, GcPhase::YoungPause);
    log.endPhase(t, 200.0, 1000.0);

    EXPECT_DOUBLE_EQ(log.stwWall(0.0, 150.0), 50.0);
    EXPECT_DOUBLE_EQ(log.stwCpu(0.0, 150.0), 500.0);
    EXPECT_DOUBLE_EQ(log.stwWall(150.0, -1.0), 50.0);
    EXPECT_DOUBLE_EQ(log.stwWall(500.0, 900.0), 0.0);
}

TEST(GcEventLogTest, OverlappingPhasesAreSupported)
{
    GcEventLog log;
    auto conc = log.beginPhase(0.0, GcPhase::Concurrent);
    auto young = log.beginPhase(10.0, GcPhase::YoungPause);
    log.endPhase(young, 20.0, 50.0);
    log.endPhase(conc, 100.0, 300.0);
    EXPECT_DOUBLE_EQ(log.stwWall(), 10.0);
    EXPECT_DOUBLE_EQ(log.totalGcCpu(), 350.0);
}

TEST(GcEventLogTest, StallAccounting)
{
    GcEventLog log;
    log.recordStall(10.0, 30.0);
    log.recordStall(50.0, 55.0);
    EXPECT_DOUBLE_EQ(log.stallWall(), 25.0);
    EXPECT_EQ(log.stallCount(), 2u);
}

/** Collector that always grants (a "perfect" GC). */
class GrantAllCollector : public CollectorRuntime
{
  public:
    std::string_view name() const override { return "grant-all"; }
    int introducedYear() const override { return 0; }
    double barrierFactor() const override { return 1.0; }

    void
    attach(const CollectorContext &context) override
    {
        heap_ = context.heap;
    }

    AllocResponse
    request(double bytes) override
    {
        if (!heap_->canFit(bytes))
            heap_->collectFull();
        if (!heap_->canFit(bytes))
            return AllocResponse::oom();
        heap_->fill(bytes);
        return AllocResponse::granted();
    }

    void shutdown() override {}

  private:
    heap::HeapSpace *heap_ = nullptr;
};

ExecutionConfig
smallConfig()
{
    ExecutionConfig config;
    config.cpus = 8.0;
    config.heap_bytes = 64e6;
    config.survivor_fraction = 0.05;
    config.seed = 7;
    return config;
}

MutatorPlan
smallPlan()
{
    MutatorPlan plan;
    plan.iterations = 3;
    plan.work_per_iteration = 1e8;  // 100 ms of CPU
    plan.alloc_per_iteration = 100e6;
    plan.width = 2.0;
    plan.warmup_multipliers = {1.5, 1.1, 1.0};
    return plan;
}

heap::LiveSetModel
smallLive()
{
    heap::LiveSetModel live;
    live.base_bytes = 10e6;
    live.buildup_fraction = 0.1;
    return live;
}

TEST(ExecutionTest, CompletesAndRecordsIterations)
{
    GrantAllCollector collector;
    const auto result = runExecution(smallConfig(), smallPlan(),
                                     smallLive(), collector);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.oom);
    ASSERT_EQ(result.iterations.size(), 3u);

    // Warmup: first iteration strictly slower than the last.
    EXPECT_GT(result.iterations[0].wall(),
              result.iterations[2].wall());

    // Work accounting: total mutator CPU = sum of warmup multipliers
    // x per-iteration work.
    const double expected = 1e8 * (1.5 + 1.1 + 1.0);
    EXPECT_NEAR(result.mutator_cpu, expected, expected * 1e-9);

    // The timed slice covers the final iteration.
    EXPECT_NEAR(result.timed.wall, result.iterations.back().wall(),
                1e-6);
    EXPECT_DOUBLE_EQ(result.timed.stw_wall, 0.0);
    EXPECT_EQ(result.stall_count, 0u);
    EXPECT_NEAR(result.total_allocated, 300e6, 1.0);
}

TEST(ExecutionTest, NoiseIsSeedDeterministic)
{
    auto config = smallConfig();
    auto plan = smallPlan();
    plan.noise_stddev = 0.05;

    GrantAllCollector c1, c2, c3;
    const auto a = runExecution(config, plan, smallLive(), c1);
    const auto b = runExecution(config, plan, smallLive(), c2);
    config.seed = 8;
    const auto c = runExecution(config, plan, smallLive(), c3);

    EXPECT_DOUBLE_EQ(a.wall, b.wall);
    EXPECT_NE(a.wall, c.wall);
}

TEST(ExecutionTest, OomAbortsTheRun)
{
    auto config = smallConfig();
    config.heap_bytes = 8e6;  // below the 10 MB live set
    GrantAllCollector collector;
    const auto result = runExecution(config, smallPlan(), smallLive(),
                                     collector);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.oom);
}

TEST(ExecutionTest, TimeLimitMarksTimeout)
{
    auto config = smallConfig();
    config.time_limit_sec = 0.05;  // 50 ms of sim time, run needs more
    GrantAllCollector collector;
    const auto result = runExecution(config, smallPlan(), smallLive(),
                                     collector);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.timed_out);
}

TEST(ExecutionTest, RateTimelineCoversRunWhenTraced)
{
    auto config = smallConfig();
    config.trace_rate = true;
    GrantAllCollector collector;
    const auto result = runExecution(config, smallPlan(), smallLive(),
                                     collector);
    ASSERT_FALSE(result.rate_timeline.empty());
    // The integral of rate x width over the timeline equals mutator
    // CPU time.
    double integral = 0.0;
    for (const auto &seg : result.rate_timeline)
        integral += (seg.end - seg.begin) * seg.rate;
    EXPECT_NEAR(integral * 2.0 /* width */, result.mutator_cpu,
                result.mutator_cpu * 1e-6);
}

TEST(WorldTest, StopAndResumeToggleFreeze)
{
    sim::Engine engine(4.0);
    World world(engine);

    class Spinner : public sim::Agent
    {
      public:
        std::string_view name() const override { return "spin"; }
        sim::Action
        resume(sim::Engine &) override
        {
            return sim::Action::compute(1e9);
        }
    };
    Spinner spinner;
    const auto id = engine.addAgent(&spinner);
    world.addMutator(id);

    EXPECT_FALSE(world.stopped());
    world.stopTheWorld();
    EXPECT_TRUE(world.stopped());
    EXPECT_TRUE(engine.frozen(id));
    world.resumeTheWorld();
    EXPECT_FALSE(engine.frozen(id));
}

} // namespace
} // namespace capo::runtime
