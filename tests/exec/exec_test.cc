/**
 * @file
 * Tests for the exec layer: pool scheduling, fork-join semantics,
 * nesting, and seed derivation.
 */

#include <array>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel_for.hh"
#include "exec/pool.hh"
#include "exec/seed.hh"

using namespace capo;

TEST(PoolTest, RunsSubmittedTasks)
{
    exec::Pool pool(2);
    std::atomic<int> ran{0};
    std::mutex mutex;
    std::condition_variable cv;
    for (int i = 0; i < 100; ++i) {
        pool.submit([&] {
            if (ran.fetch_add(1) + 1 == 100) {
                std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ran.load() == 100; });
    EXPECT_EQ(ran.load(), 100);
}

TEST(PoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        exec::Pool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(PoolTest, ResolveJobs)
{
    EXPECT_EQ(exec::resolveJobs(1), 1u);
    EXPECT_EQ(exec::resolveJobs(7), 7u);
    EXPECT_GE(exec::resolveJobs(0), 1u);  // auto: all hardware threads
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce)
{
    exec::Pool pool(3);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    exec::parallel_for(pool, n,
                       [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, ResultsLandByIndex)
{
    exec::Pool pool(4);
    constexpr std::size_t n = 257;
    std::vector<std::size_t> out(n, 0);
    exec::parallel_for(pool, n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, MaxParallelOneRunsInlineInOrder)
{
    exec::Pool pool(4);
    std::vector<std::size_t> order;
    exec::parallel_for(
        pool, 16, [&](std::size_t i) { order.push_back(i); }, 1);
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ZeroCountReturnsImmediately)
{
    exec::Pool pool(2);
    bool ran = false;
    exec::parallel_for(pool, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelForTest, NestedJoinsComplete)
{
    exec::Pool pool(3);
    constexpr std::size_t outer = 8;
    constexpr std::size_t inner = 8;
    std::vector<std::array<std::atomic<int>, inner>> visits(outer);
    exec::parallel_for(pool, outer, [&](std::size_t o) {
        exec::parallel_for(pool, inner, [&, o](std::size_t i) {
            visits[o][i].fetch_add(1);
        });
    });
    for (std::size_t o = 0; o < outer; ++o) {
        for (std::size_t i = 0; i < inner; ++i)
            EXPECT_EQ(visits[o][i].load(), 1);
    }
}

TEST(ParallelForTest, CallerThreadParticipates)
{
    // The caller claims indices alongside the single worker, so the
    // join completes even when the pool has minimal capacity.
    exec::Pool pool(1);
    std::atomic<int> sum{0};
    exec::parallel_for(pool, 100,
                       [&](std::size_t i) {
                           sum.fetch_add(static_cast<int>(i));
                       });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(SeedTest, PureFunctionOfCoordinates)
{
    const auto a = exec::cellSeed(1, "lusearch", 2, 100.0, 0);
    const auto b = exec::cellSeed(1, "lusearch", 2, 100.0, 0);
    EXPECT_EQ(a, b);
}

TEST(SeedTest, DistinctCoordinatesGiveDistinctSeeds)
{
    std::set<std::uint64_t> seeds;
    for (const char *workload : {"lusearch", "h2", "fop"}) {
        for (std::uint64_t collector : {0u, 1u, 2u}) {
            for (double heap : {50.0, 100.0, 200.0}) {
                for (int inv = 0; inv < 3; ++inv) {
                    seeds.insert(exec::cellSeed(0x5eed, workload,
                                                collector, heap, inv));
                }
            }
        }
    }
    EXPECT_EQ(seeds.size(), 3u * 3u * 3u * 3u);
}

TEST(SeedTest, BaseSeedChangesEverything)
{
    EXPECT_NE(exec::cellSeed(1, "h2", 0, 64.0, 0),
              exec::cellSeed(2, "h2", 0, 64.0, 0));
}

TEST(SeedTest, MixAvalanche)
{
    // Flipping one input bit flips roughly half the output bits.
    const std::uint64_t x = exec::mix64(0x1234);
    const std::uint64_t y = exec::mix64(0x1235);
    int diff = 0;
    for (int b = 0; b < 64; ++b)
        diff += ((x ^ y) >> b) & 1;
    EXPECT_GT(diff, 16);
    EXPECT_LT(diff, 48);
}
