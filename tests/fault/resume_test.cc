/**
 * @file
 * Crash-safe checkpoint/resume tests. The journal is append-only and
 * flushed per record, so a killed run's file is a prefix of a full
 * run's file (possibly plus one torn line); these tests simulate every
 * kill point by truncating a complete journal and assert the resumed
 * sweep's CSV is bitwise-identical to the uninterrupted run — at any
 * --jobs, across all five production collectors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/checkpoint.hh"
#include "harness/latency_experiment.hh"
#include "harness/lbo_experiment.hh"
#include "harness/minheap.hh"
#include "metrics/export.hh"
#include "workloads/registry.hh"

namespace capo::harness {
namespace {

constexpr std::uint64_t kHash = 0x5eedf00dcafe;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "capo_resume_" + name + ".ckpt";
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

// ---------------------------------------------------------------------
// Journal unit tests.

TEST(CheckpointJournalTest, DoublesRoundTripExactly)
{
    for (double v : {0.0, -0.0, 1.0, -1.5, 3.141592653589793,
                     1.23456789e300, 4.9e-324, 1e9 + 1.0 / 3.0}) {
        double back = 0.0;
        ASSERT_TRUE(CheckpointJournal::decodeDouble(
            CheckpointJournal::encodeDouble(v), back));
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0);
    }
    double out;
    EXPECT_FALSE(CheckpointJournal::decodeDouble("", out));
    EXPECT_FALSE(CheckpointJournal::decodeDouble("123", out));
    EXPECT_FALSE(
        CheckpointJournal::decodeDouble("zz00000000000000", out));
}

TEST(CheckpointJournalTest, AppendLookupPersistResume)
{
    const auto path = tempPath("unit");
    std::string error;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->entryCount(), 0u);
        journal->append("k1", {"a", "b"});
        journal->append("k2", {"c"});
        std::vector<std::string> fields;
        ASSERT_TRUE(journal->lookup("k1", fields));
        EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
        EXPECT_FALSE(journal->lookup("k3", fields));
    }
    {
        auto journal =
            CheckpointJournal::open(path, kHash, true, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->entryCount(), 2u);
        std::vector<std::string> fields;
        ASSERT_TRUE(journal->lookup("k2", fields));
        EXPECT_EQ(fields, (std::vector<std::string>{"c"}));
        journal->append("k3", {"d"});
    }
    // Without resume the file is truncated and starts fresh.
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->entryCount(), 0u);
    }
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, HashMismatchRefusesResume)
{
    const auto path = tempPath("hash");
    std::string error;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
    }
    auto journal =
        CheckpointJournal::open(path, kHash + 1, true, error);
    EXPECT_EQ(journal, nullptr);
    EXPECT_NE(error.find("header mismatch"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, TornFinalRecordIsDropped)
{
    const auto path = tempPath("torn");
    std::string error;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        journal->append("whole", {"1"});
        journal->append("doomed", {"2"});
    }
    // Chop mid-way through the final record, as a kill during the
    // append would.
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    writeFile(path, contents.substr(0, contents.size() - 3));

    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 1u);
    std::vector<std::string> fields;
    EXPECT_TRUE(journal->lookup("whole", fields));
    EXPECT_FALSE(journal->lookup("doomed", fields));
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, MissingFileOnResumeStartsFresh)
{
    const auto path = tempPath("missing");
    std::remove(path.c_str());
    std::string error;
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 0u);
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, CompactMergesDuplicatesAndSorts)
{
    const auto path = tempPath("compact");
    std::string error;
    auto journal = CheckpointJournal::open(path, kHash, false, error);
    ASSERT_NE(journal, nullptr) << error;
    journal->append("b", {"1"});
    journal->append("a", {"2"});
    journal->append("b", {"3"});  // supersedes the first record
    EXPECT_EQ(journal->entryCount(), 2u);
    EXPECT_EQ(readLines(path).size(), 4u);  // header + 3 records

    ASSERT_TRUE(journal->compact());
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);  // header + one record per cell
    EXPECT_EQ(lines[1], "a\t2");  // key-sorted
    EXPECT_EQ(lines[2], "b\t3");  // last record won

    // The append stream survives compaction...
    journal->append("c", {"4"});
    EXPECT_EQ(readLines(path).size(), 4u);

    // ...and a resumed open sees the compacted + appended state.
    journal.reset();
    journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 3u);
    std::vector<std::string> fields;
    ASSERT_TRUE(journal->lookup("b", fields));
    EXPECT_EQ(fields, (std::vector<std::string>{"3"}));
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, CompactedFileResumesIdentically)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("compact_sweep");
    std::string error;

    harness::LboSweepOptions sweep;
    sweep.factors = {2.0};
    sweep.collectors = {gc::Algorithm::Serial, gc::Algorithm::G1};
    sweep.base.iterations = 2;
    sweep.base.invocations = 1;
    sweep.base.time_limit_sec = 300;

    std::string full_csv;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        std::stringstream out;
        metrics::exportLboCsv(runLboSweep(fop, sweep).analysis, out);
        full_csv = out.str();
        ASSERT_TRUE(journal->compact());
    }
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 2u);
    sweep.journal = journal.get();
    const auto resumed = runLboSweep(fop, sweep);
    EXPECT_EQ(resumed.restored_cells, 2u);
    std::stringstream out;
    metrics::exportLboCsv(resumed.analysis, out);
    EXPECT_EQ(out.str(), full_csv);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Kill-and-resume over a real sweep, all five production collectors.

LboSweepOptions
sweepOptions(int jobs)
{
    LboSweepOptions sweep;
    sweep.factors = {2.0, 3.0};
    sweep.collectors = gc::productionCollectors();
    sweep.base.iterations = 2;
    sweep.base.invocations = 2;
    sweep.base.time_limit_sec = 300;
    sweep.base.jobs = jobs;
    return sweep;
}

std::string
sweepCsv(const WorkloadLbo &result)
{
    std::stringstream out;
    metrics::exportLboCsv(result.analysis, out);
    return out.str();
}

TEST(ResumeSweepTest, ResumeFromAnyPrefixIsBitIdentical)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("prefix");
    std::string error;

    // Uninterrupted reference run, journaling as it goes.
    auto sweep = sweepOptions(1);
    std::string full_csv;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        const auto result = runLboSweep(fop, sweep);
        EXPECT_EQ(result.restored_cells, 0u);
        full_csv = sweepCsv(result);
        // Ten cells (5 collectors x 2 factors), one record each.
        EXPECT_EQ(journal->entryCount(), 10u);
    }
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 11u);  // header + 10 cells

    // Because the journal is append-only and per-record flushed, a
    // SIGKILL at any moment leaves some prefix of these lines.
    // Replay a spread of kill points — header only, early, midway,
    // one-cell-short, complete — at both -j1 and -j8.
    for (std::size_t keep : {1u, 2u, 6u, 10u, 11u}) {
        std::string prefix;
        for (std::size_t i = 0; i < keep; ++i)
            prefix += lines[i] + "\n";
        for (int jobs : {1, 8}) {
            writeFile(path, prefix);
            auto journal =
                CheckpointJournal::open(path, kHash, true, error);
            ASSERT_NE(journal, nullptr) << error;
            EXPECT_EQ(journal->entryCount(), keep - 1);

            auto resumed = sweepOptions(jobs);
            resumed.journal = journal.get();
            const auto result = runLboSweep(fop, resumed);
            EXPECT_EQ(result.restored_cells, keep - 1);
            EXPECT_EQ(sweepCsv(result), full_csv)
                << "prefix " << keep << " jobs " << jobs;
            // The journal is complete again after the resumed run.
            EXPECT_EQ(journal->entryCount(), 10u);
        }
    }
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, TornLineResumesAndRerunsThatCell)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("sweep_torn");
    std::string error;

    auto sweep = sweepOptions(1);
    std::string full_csv;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        full_csv = sweepCsv(runLboSweep(fop, sweep));
    }
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    writeFile(path, contents.substr(0, contents.size() - 5));

    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 9u);  // torn record dropped

    auto resumed = sweepOptions(8);
    resumed.journal = journal.get();
    const auto result = runLboSweep(fop, resumed);
    EXPECT_EQ(result.restored_cells, 9u);
    EXPECT_EQ(sweepCsv(result), full_csv);
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, TracedSweepBypassesRestoreButStillJournals)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("traced");
    std::string error;

    auto sweep = sweepOptions(1);
    sweep.factors = {2.0};
    sweep.collectors = {gc::Algorithm::G1};
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        runLboSweep(fop, sweep);
        EXPECT_EQ(journal->entryCount(), 1u);
    }
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    trace::TraceSink sink;
    sweep.journal = journal.get();
    sweep.base.trace = &sink;
    const auto result = runLboSweep(fop, sweep);
    // Cells re-ran (the journal has no timelines) yet the trace is
    // fully populated and the journal is intact.
    EXPECT_EQ(result.restored_cells, 0u);
    EXPECT_GT(sink.eventCount(), 0u);
    EXPECT_EQ(journal->entryCount(), 1u);
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, MinHeapGridResumes)
{
    const std::vector<std::string> names = {"fop"};
    const std::vector<gc::Algorithm> collectors = {
        gc::Algorithm::Serial, gc::Algorithm::G1};
    ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 1;
    options.time_limit_sec = 300;

    const auto path = tempPath("minheap");
    std::string error;
    MinHeapGrid full;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        full = findMinHeapGrid(names, collectors, options, 0.05,
                               journal.get());
    }
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);  // header + 2 cells

    // Keep only the first cell; the resumed grid must match exactly.
    writeFile(path, lines[0] + "\n" + lines[1] + "\n");
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    options.jobs = 8;
    const auto resumed = findMinHeapGrid(names, collectors, options,
                                         0.05, journal.get());
    ASSERT_EQ(resumed.cells.size(), full.cells.size());
    for (std::size_t i = 0; i < full.cells.size(); ++i) {
        EXPECT_EQ(resumed.cells[i].result.min_heap_mb,
                  full.cells[i].result.min_heap_mb);
        EXPECT_EQ(resumed.cells[i].result.probes,
                  full.cells[i].result.probes);
        EXPECT_EQ(resumed.cells[i].result.converged,
                  full.cells[i].result.converged);
    }
    EXPECT_EQ(journal->entryCount(), 2u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Latency plans journal per-cell quantiles (DESIGN.md §8,
// latency/<workload>/<collector>/<factor-bits>) and resume bitwise.

LatencySweepOptions
latencyOptions(int jobs)
{
    LatencySweepOptions sweep;
    sweep.factors = {2.0};
    sweep.collectors = {gc::Algorithm::G1, gc::Algorithm::Shenandoah};
    sweep.base.iterations = 2;
    sweep.base.time_limit_sec = 300;
    sweep.base.jobs = jobs;
    return sweep;
}

void
expectCellsBitIdentical(const LatencySweep &a, const LatencySweep &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const auto &x = a.cells[i];
        const auto &y = b.cells[i];
        EXPECT_EQ(x.workload, y.workload);
        EXPECT_EQ(x.collector, y.collector);
        EXPECT_EQ(x.ok, y.ok);
        const double xs[] = {x.p50_ns, x.p99_ns, x.p999_ns,
                             x.metered_p50_ns, x.metered_p999_ns};
        const double ys[] = {y.p50_ns, y.p99_ns, y.p999_ns,
                             y.metered_p50_ns, y.metered_p999_ns};
        EXPECT_EQ(std::memcmp(xs, ys, sizeof xs), 0)
            << "cell " << i << " quantiles differ";
    }
}

TEST(ResumeSweepTest, LatencySweepResumesBitIdentical)
{
    const std::vector<std::string> names = {"lusearch"};
    const auto path = tempPath("latency");
    std::string error;

    LatencySweep full;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        auto sweep = latencyOptions(1);
        sweep.journal = journal.get();
        full = runLatencySweep(names, sweep);
        EXPECT_EQ(full.restored_cells, 0u);
        EXPECT_EQ(journal->entryCount(), 2u);
        for (const auto &cell : full.cells)
            EXPECT_TRUE(cell.have_raw);
    }
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);  // header + 2 cells

    // Kill after the first cell: the resumed sweep restores it and
    // re-runs only the second, with bit-identical quantiles at any
    // --jobs.
    for (int jobs : {1, 8}) {
        writeFile(path, lines[0] + "\n" + lines[1] + "\n");
        auto journal =
            CheckpointJournal::open(path, kHash, true, error);
        ASSERT_NE(journal, nullptr) << error;
        auto sweep = latencyOptions(jobs);
        sweep.journal = journal.get();
        const auto resumed = runLatencySweep(names, sweep);
        EXPECT_EQ(resumed.restored_cells, 1u);
        EXPECT_TRUE(resumed.cells[0].restored);
        EXPECT_FALSE(resumed.cells[0].have_raw);
        expectCellsBitIdentical(full, resumed);
        EXPECT_EQ(journal->entryCount(), 2u);
    }
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, LatencyRawSweepBypassesRestoreButStillJournals)
{
    const std::vector<std::string> names = {"lusearch"};
    const auto path = tempPath("latency_raw");
    std::string error;

    LatencySweep full;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        auto sweep = latencyOptions(1);
        sweep.journal = journal.get();
        full = runLatencySweep(names, sweep);
    }
    // The journal holds quantiles, not request logs, so a sweep that
    // needs raw CSVs re-runs every cell — deterministically — while
    // the journal stays intact for summary-only resumes.
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    auto sweep = latencyOptions(1);
    sweep.journal = journal.get();
    sweep.want_raw = true;
    const auto rerun = runLatencySweep(names, sweep);
    EXPECT_EQ(rerun.restored_cells, 0u);
    for (const auto &cell : rerun.cells) {
        EXPECT_FALSE(cell.restored);
        EXPECT_TRUE(cell.have_raw);
    }
    expectCellsBitIdentical(full, rerun);
    EXPECT_EQ(journal->entryCount(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace capo::harness
