/**
 * @file
 * Crash-safe checkpoint/resume tests. The journal is append-only and
 * flushed per record, so a killed run's file is a prefix of a full
 * run's file (possibly plus one torn line); these tests simulate every
 * kill point by truncating a complete journal and assert the resumed
 * sweep's CSV is bitwise-identical to the uninterrupted run — at any
 * --jobs, across all five production collectors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/checkpoint.hh"
#include "harness/lbo_experiment.hh"
#include "harness/minheap.hh"
#include "metrics/export.hh"
#include "workloads/registry.hh"

namespace capo::harness {
namespace {

constexpr std::uint64_t kHash = 0x5eedf00dcafe;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "capo_resume_" + name + ".ckpt";
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

// ---------------------------------------------------------------------
// Journal unit tests.

TEST(CheckpointJournalTest, DoublesRoundTripExactly)
{
    for (double v : {0.0, -0.0, 1.0, -1.5, 3.141592653589793,
                     1.23456789e300, 4.9e-324, 1e9 + 1.0 / 3.0}) {
        double back = 0.0;
        ASSERT_TRUE(CheckpointJournal::decodeDouble(
            CheckpointJournal::encodeDouble(v), back));
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0);
    }
    double out;
    EXPECT_FALSE(CheckpointJournal::decodeDouble("", out));
    EXPECT_FALSE(CheckpointJournal::decodeDouble("123", out));
    EXPECT_FALSE(
        CheckpointJournal::decodeDouble("zz00000000000000", out));
}

TEST(CheckpointJournalTest, AppendLookupPersistResume)
{
    const auto path = tempPath("unit");
    std::string error;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->entryCount(), 0u);
        journal->append("k1", {"a", "b"});
        journal->append("k2", {"c"});
        std::vector<std::string> fields;
        ASSERT_TRUE(journal->lookup("k1", fields));
        EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
        EXPECT_FALSE(journal->lookup("k3", fields));
    }
    {
        auto journal =
            CheckpointJournal::open(path, kHash, true, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->entryCount(), 2u);
        std::vector<std::string> fields;
        ASSERT_TRUE(journal->lookup("k2", fields));
        EXPECT_EQ(fields, (std::vector<std::string>{"c"}));
        journal->append("k3", {"d"});
    }
    // Without resume the file is truncated and starts fresh.
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->entryCount(), 0u);
    }
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, HashMismatchRefusesResume)
{
    const auto path = tempPath("hash");
    std::string error;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
    }
    auto journal =
        CheckpointJournal::open(path, kHash + 1, true, error);
    EXPECT_EQ(journal, nullptr);
    EXPECT_NE(error.find("header mismatch"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, TornFinalRecordIsDropped)
{
    const auto path = tempPath("torn");
    std::string error;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        journal->append("whole", {"1"});
        journal->append("doomed", {"2"});
    }
    // Chop mid-way through the final record, as a kill during the
    // append would.
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    writeFile(path, contents.substr(0, contents.size() - 3));

    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 1u);
    std::vector<std::string> fields;
    EXPECT_TRUE(journal->lookup("whole", fields));
    EXPECT_FALSE(journal->lookup("doomed", fields));
    std::remove(path.c_str());
}

TEST(CheckpointJournalTest, MissingFileOnResumeStartsFresh)
{
    const auto path = tempPath("missing");
    std::remove(path.c_str());
    std::string error;
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Kill-and-resume over a real sweep, all five production collectors.

LboSweepOptions
sweepOptions(int jobs)
{
    LboSweepOptions sweep;
    sweep.factors = {2.0, 3.0};
    sweep.collectors = gc::productionCollectors();
    sweep.base.iterations = 2;
    sweep.base.invocations = 2;
    sweep.base.time_limit_sec = 300;
    sweep.base.jobs = jobs;
    return sweep;
}

std::string
sweepCsv(const WorkloadLbo &result)
{
    std::stringstream out;
    metrics::exportLboCsv(result.analysis, out);
    return out.str();
}

TEST(ResumeSweepTest, ResumeFromAnyPrefixIsBitIdentical)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("prefix");
    std::string error;

    // Uninterrupted reference run, journaling as it goes.
    auto sweep = sweepOptions(1);
    std::string full_csv;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        const auto result = runLboSweep(fop, sweep);
        EXPECT_EQ(result.restored_cells, 0u);
        full_csv = sweepCsv(result);
        // Ten cells (5 collectors x 2 factors), one record each.
        EXPECT_EQ(journal->entryCount(), 10u);
    }
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 11u);  // header + 10 cells

    // Because the journal is append-only and per-record flushed, a
    // SIGKILL at any moment leaves some prefix of these lines.
    // Replay a spread of kill points — header only, early, midway,
    // one-cell-short, complete — at both -j1 and -j8.
    for (std::size_t keep : {1u, 2u, 6u, 10u, 11u}) {
        std::string prefix;
        for (std::size_t i = 0; i < keep; ++i)
            prefix += lines[i] + "\n";
        for (int jobs : {1, 8}) {
            writeFile(path, prefix);
            auto journal =
                CheckpointJournal::open(path, kHash, true, error);
            ASSERT_NE(journal, nullptr) << error;
            EXPECT_EQ(journal->entryCount(), keep - 1);

            auto resumed = sweepOptions(jobs);
            resumed.journal = journal.get();
            const auto result = runLboSweep(fop, resumed);
            EXPECT_EQ(result.restored_cells, keep - 1);
            EXPECT_EQ(sweepCsv(result), full_csv)
                << "prefix " << keep << " jobs " << jobs;
            // The journal is complete again after the resumed run.
            EXPECT_EQ(journal->entryCount(), 10u);
        }
    }
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, TornLineResumesAndRerunsThatCell)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("sweep_torn");
    std::string error;

    auto sweep = sweepOptions(1);
    std::string full_csv;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        full_csv = sweepCsv(runLboSweep(fop, sweep));
    }
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    writeFile(path, contents.substr(0, contents.size() - 5));

    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->entryCount(), 9u);  // torn record dropped

    auto resumed = sweepOptions(8);
    resumed.journal = journal.get();
    const auto result = runLboSweep(fop, resumed);
    EXPECT_EQ(result.restored_cells, 9u);
    EXPECT_EQ(sweepCsv(result), full_csv);
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, TracedSweepBypassesRestoreButStillJournals)
{
    const auto &fop = workloads::byName("fop");
    const auto path = tempPath("traced");
    std::string error;

    auto sweep = sweepOptions(1);
    sweep.factors = {2.0};
    sweep.collectors = {gc::Algorithm::G1};
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        sweep.journal = journal.get();
        runLboSweep(fop, sweep);
        EXPECT_EQ(journal->entryCount(), 1u);
    }
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    trace::TraceSink sink;
    sweep.journal = journal.get();
    sweep.base.trace = &sink;
    const auto result = runLboSweep(fop, sweep);
    // Cells re-ran (the journal has no timelines) yet the trace is
    // fully populated and the journal is intact.
    EXPECT_EQ(result.restored_cells, 0u);
    EXPECT_GT(sink.eventCount(), 0u);
    EXPECT_EQ(journal->entryCount(), 1u);
    std::remove(path.c_str());
}

TEST(ResumeSweepTest, MinHeapGridResumes)
{
    const std::vector<std::string> names = {"fop"};
    const std::vector<gc::Algorithm> collectors = {
        gc::Algorithm::Serial, gc::Algorithm::G1};
    ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 1;
    options.time_limit_sec = 300;

    const auto path = tempPath("minheap");
    std::string error;
    MinHeapGrid full;
    {
        auto journal =
            CheckpointJournal::open(path, kHash, false, error);
        ASSERT_NE(journal, nullptr) << error;
        full = findMinHeapGrid(names, collectors, options, 0.05,
                               journal.get());
    }
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);  // header + 2 cells

    // Keep only the first cell; the resumed grid must match exactly.
    writeFile(path, lines[0] + "\n" + lines[1] + "\n");
    auto journal = CheckpointJournal::open(path, kHash, true, error);
    ASSERT_NE(journal, nullptr) << error;
    options.jobs = 8;
    const auto resumed = findMinHeapGrid(names, collectors, options,
                                         0.05, journal.get());
    ASSERT_EQ(resumed.cells.size(), full.cells.size());
    for (std::size_t i = 0; i < full.cells.size(); ++i) {
        EXPECT_EQ(resumed.cells[i].result.min_heap_mb,
                  full.cells[i].result.min_heap_mb);
        EXPECT_EQ(resumed.cells[i].result.probes,
                  full.cells[i].result.probes);
        EXPECT_EQ(resumed.cells[i].result.converged,
                  full.cells[i].result.converged);
    }
    EXPECT_EQ(journal->entryCount(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace capo::harness
