/**
 * @file
 * Fault-injection tests: the injector's determinism contract (same
 * seed, same schedule — at any --jobs), rate calibration, spec
 * parsing, quarantine bookkeeping, retry salting and worker death in
 * the exec pool.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "exec/parallel_for.hh"
#include "exec/pool.hh"
#include "fault/fault.hh"
#include "harness/lbo_experiment.hh"
#include "harness/runner.hh"
#include "metrics/export.hh"
#include "report/artifact.hh"
#include "workloads/registry.hh"

namespace capo::fault {
namespace {

FaultPlan
allSites(double rate)
{
    FaultPlan plan;
    plan.rates.fill(rate);
    return plan;
}

std::vector<InjectedFault>
schedule(const FaultPlan &plan, std::uint64_t cell_seed, int attempt,
         int opportunities)
{
    FaultInjector injector(plan, cell_seed, attempt);
    for (int i = 0; i < opportunities; ++i) {
        for (std::size_t s = 0; s < kSiteCount; ++s)
            injector.fire(static_cast<Site>(s), i * 100.0);
    }
    return injector.injected();
}

TEST(FaultInjectorTest, SameSeedReplaysIdentically)
{
    const auto plan = allSites(0.05);
    const auto a = schedule(plan, 42, 0, 2000);
    const auto b = schedule(plan, 42, 0, 2000);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 0u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].site, b[i].site);
        EXPECT_EQ(a[i].sequence, b[i].sequence);
        EXPECT_EQ(a[i].sim_time_ns, b[i].sim_time_ns);
    }
}

TEST(FaultInjectorTest, CellSeedAndAttemptSaltTheStream)
{
    const auto plan = allSites(0.05);
    const auto base = schedule(plan, 42, 0, 2000);
    const auto other_cell = schedule(plan, 43, 0, 2000);
    const auto other_attempt = schedule(plan, 42, 1, 2000);

    const auto differs = [&](const std::vector<InjectedFault> &other) {
        if (other.size() != base.size())
            return true;
        for (std::size_t i = 0; i < base.size(); ++i) {
            if (base[i].site != other[i].site ||
                base[i].sequence != other[i].sequence)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(differs(other_cell));
    EXPECT_TRUE(differs(other_attempt));
}

TEST(FaultInjectorTest, DisarmedSitesDoNotShiftArmedSchedules)
{
    // Per-site streams are independent: arming gc must not move a
    // single alloc-oom decision.
    FaultPlan alloc_only;
    alloc_only.setRate(Site::AllocOom, 0.03);
    FaultPlan both = alloc_only;
    both.setRate(Site::GcPhaseAbort, 0.5);

    FaultInjector a(alloc_only, 7, 0);
    FaultInjector b(both, 7, 0);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(a.fire(Site::AllocOom, i),
                  b.fire(Site::AllocOom, i));
        b.fire(Site::GcPhaseAbort, i);  // interleaved consultation
    }
}

TEST(FaultInjectorTest, FiringRateTracksConfiguredRate)
{
    FaultPlan plan;
    plan.setRate(Site::AllocOom, 0.02);
    FaultInjector injector(plan, 99, 0);
    const int n = 200000;
    int fired = 0;
    for (int i = 0; i < n; ++i)
        fired += injector.fire(Site::AllocOom, 0.0) ? 1 : 0;
    EXPECT_EQ(injector.opportunities(Site::AllocOom),
              static_cast<std::uint64_t>(n));
    // 5-sigma band around the binomial mean.
    const double mean = n * 0.02;
    const double sigma = std::sqrt(n * 0.02 * 0.98);
    EXPECT_NEAR(fired, mean, 5.0 * sigma);
}

TEST(FaultInjectorTest, TimerJitterBoundedAndDeterministic)
{
    FaultPlan plan;
    plan.setRate(Site::TimerPerturb, 1.0);
    plan.timer_jitter_ns = 1000.0;
    FaultInjector a(plan, 5, 0);
    FaultInjector b(plan, 5, 0);
    bool any_nonzero = false;
    for (int i = 0; i < 1000; ++i) {
        const double ja = a.timerJitter(0.0);
        EXPECT_EQ(ja, b.timerJitter(0.0));
        EXPECT_LE(std::abs(ja), 1000.0);
        any_nonzero = any_nonzero || ja != 0.0;
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(FaultSpecTest, ParsesAllForms)
{
    FaultPlan plan;
    std::string error;

    EXPECT_TRUE(parseFaultSpec("0.25", plan, error));
    for (std::size_t s = 0; s < kSiteCount; ++s)
        EXPECT_DOUBLE_EQ(plan.rates[s], 0.25);

    EXPECT_TRUE(parseFaultSpec("alloc=0.01, gc = 0.005", plan, error));
    EXPECT_DOUBLE_EQ(plan.rate(Site::AllocOom), 0.01);
    EXPECT_DOUBLE_EQ(plan.rate(Site::GcPhaseAbort), 0.005);
    EXPECT_DOUBLE_EQ(plan.rate(Site::WorkerDeath), 0.0);

    EXPECT_TRUE(parseFaultSpec("none", plan, error));
    EXPECT_FALSE(plan.enabled());
    EXPECT_TRUE(parseFaultSpec("", plan, error));
    EXPECT_FALSE(plan.enabled());

    EXPECT_FALSE(parseFaultSpec("alloc=2.0", plan, error));
    EXPECT_NE(error.find("rate"), std::string::npos);
    EXPECT_FALSE(parseFaultSpec("frobnicator=0.1", plan, error));
    EXPECT_FALSE(parseFaultSpec("alloc", plan, error));
    EXPECT_FALSE(parseFaultSpec("0.1x", plan, error));
}

TEST(FaultSpecTest, ArtifactSiteParsesUnderBothNames)
{
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(parseFaultSpec("artifact=0.1", plan, error));
    EXPECT_DOUBLE_EQ(plan.rate(Site::ArtifactIo), 0.1);
    EXPECT_DOUBLE_EQ(plan.rate(Site::AllocOom), 0.0);
    EXPECT_TRUE(parseFaultSpec("artifact-io=0.2", plan, error));
    EXPECT_DOUBLE_EQ(plan.rate(Site::ArtifactIo), 0.2);
    EXPECT_STREQ(siteName(Site::ArtifactIo), "artifact-io");
}

// ---------------------------------------------------------------------
// The artifact_io site through the report layer's ArtifactSink: writes
// retry on injected failures, quarantine when exhausted, and the whole
// schedule replays from the seed.

TEST(ArtifactFaultTest, InjectedWriteFailuresRetryThenQuarantine)
{
    FaultPlan plan;
    plan.setRate(Site::ArtifactIo, 0.4);
    plan.seed = 17;

    const auto run = [&plan] {
        report::ArtifactSink sink(".",
                                  report::ArtifactSink::Mode::Memory);
        sink.armFaults(plan, 99);
        sink.setRetries(1);
        std::vector<std::pair<int, bool>> outcomes;
        for (int i = 0; i < 32; ++i) {
            const std::string path =
                "table_" + std::to_string(i) + ".csv";
            const bool ok = sink.write(
                path, [&](std::ostream &out) { out << i << "\n"; });
            outcomes.emplace_back(sink.artifacts().back().attempts,
                                  ok);
            // A landed artifact is readable; a quarantined one left
            // nothing behind.
            EXPECT_EQ(sink.payload(path),
                      ok ? std::to_string(i) + "\n" : "");
        }
        return outcomes;
    };

    const auto first = run();
    // At rate 0.4 with two opportunities per attempt and one retry,
    // 32 writes must see all three outcomes: clean first attempts,
    // successful retries, and quarantines.
    bool clean = false, retried = false, quarantined = false;
    for (const auto &[attempts, ok] : first) {
        clean |= ok && attempts == 1;
        retried |= ok && attempts > 1;
        quarantined |= !ok;
    }
    EXPECT_TRUE(clean);
    EXPECT_TRUE(retried);
    EXPECT_TRUE(quarantined);

    // Determinism: the exact same schedule replays from the seed.
    EXPECT_EQ(run(), first);
}

// ---------------------------------------------------------------------
// Whole-stack behaviour through the harness.

harness::ExperimentOptions
faultyOptions(int jobs)
{
    harness::ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 2;
    options.time_limit_sec = 300;
    options.jobs = jobs;
    options.faults.setRate(Site::AllocOom, 2e-4);
    options.faults.setRate(Site::AllocStall, 1e-3);
    options.faults.setRate(Site::TimerPerturb, 0.05);
    options.faults.seed = 11;
    return options;
}

void
expectErrorsIdentical(const std::vector<harness::CellError> &a,
                      const std::vector<harness::CellError> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].collector, b[i].collector);
        EXPECT_EQ(a[i].heap_factor, b[i].heap_factor);
        EXPECT_EQ(a[i].invocation, b[i].invocation);
        EXPECT_EQ(a[i].attempts, b[i].attempts);
        EXPECT_EQ(a[i].kind, b[i].kind);
    }
}

TEST(FaultSweepTest, FaultySweepIsBitIdenticalAcrossJobs)
{
    harness::LboSweepOptions sweep;
    sweep.factors = {2.0, 3.0};
    sweep.collectors = {gc::Algorithm::Serial, gc::Algorithm::G1};
    sweep.base = faultyOptions(1);

    const auto &fop = workloads::byName("fop");
    const auto serial = runLboSweep(fop, sweep);

    sweep.base.jobs = 8;
    const auto parallel = runLboSweep(fop, sweep);

    // The fault schedule — and therefore which cells fail — is a pure
    // function of cell coordinates, never of scheduling.
    expectErrorsIdentical(serial.errors, parallel.errors);
    EXPECT_EQ(serial.dispatches, parallel.dispatches);

    std::stringstream a, b;
    metrics::exportLboCsv(serial.analysis, a);
    metrics::exportLboCsv(parallel.analysis, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(FaultSweepTest, FailuresAreQuarantinedNotFatal)
{
    // An aggressive OOM rate: runs fail, the sweep still returns and
    // reports each failure as a typed CellError.
    harness::LboSweepOptions sweep;
    sweep.factors = {2.0};
    sweep.collectors = {gc::Algorithm::G1};
    sweep.base = faultyOptions(1);
    sweep.base.faults.setRate(Site::AllocOom, 0.05);

    const auto &fop = workloads::byName("fop");
    const auto result = runLboSweep(fop, sweep);
    ASSERT_FALSE(result.errors.empty());
    for (const auto &e : result.errors) {
        EXPECT_EQ(e.workload, "fop");
        EXPECT_EQ(e.collector, "G1");
        EXPECT_EQ(e.heap_factor, 2.0);
        EXPECT_GE(e.invocation, 0);
        EXPECT_TRUE(e.kind == "oom" || e.kind == "timeout" ||
                    e.kind == "failed")
            << e.kind;
    }
    EXPECT_FALSE(result.completedAt("G1", 2.0));
}

TEST(FaultRetryTest, RetriesSaltTheScheduleAndAreRecorded)
{
    // Find a rate where attempt 0 fails for some invocations and
    // passes for others, then check retries clear transient failures.
    const auto &fop = workloads::byName("fop");
    auto options = faultyOptions(1);
    options.faults.rates.fill(0.0);

    double rate = 0.0;
    std::vector<int> failing;
    for (double candidate : {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3}) {
        options.faults.setRate(Site::AllocOom, candidate);
        harness::Runner probe(options);
        std::vector<int> failed;
        for (int inv = 0; inv < 8; ++inv) {
            const auto run = probe.runOnce(fop, gc::Algorithm::G1,
                                           fop.gc.gmd_mb * 2.0, inv);
            if (!run.usable())
                failed.push_back(inv);
        }
        if (failed.size() >= 2 && failed.size() <= 6) {
            rate = candidate;
            failing = failed;
            break;
        }
    }
    ASSERT_GT(rate, 0.0) << "no candidate rate gave mixed outcomes";

    options.faults.setRate(Site::AllocOom, rate);
    options.retries = 4;
    harness::Runner runner(options);
    int cleared = 0;
    for (int inv : failing) {
        const auto run = runner.runOnce(fop, gc::Algorithm::G1,
                                        fop.gc.gmd_mb * 2.0, inv);
        if (run.usable()) {
            // A retry succeeded where attempt 0 failed: the attempt
            // salt produced a fresh schedule.
            EXPECT_GT(run.attempts, 1);
            ++cleared;
        } else {
            EXPECT_EQ(run.attempts, 5);
        }
    }
    EXPECT_GT(cleared, 0);
}

TEST(FaultRetryTest, RetriesAreSkippedWithoutFaults)
{
    // Deterministic re-execution re-fails identically; the runner must
    // not waste attempts when no faults are armed.
    const auto &fop = workloads::byName("fop");
    harness::ExperimentOptions options;
    options.iterations = 2;
    options.retries = 3;
    options.time_limit_sec = 300;
    harness::Runner runner(options);
    // A heap far below GMD fails genuinely.
    const auto run =
        runner.runOnce(fop, gc::Algorithm::G1, fop.gc.gmd_mb * 0.1, 0);
    EXPECT_FALSE(run.usable());
    EXPECT_EQ(run.attempts, 1);
}

// ---------------------------------------------------------------------
// Worker death in the exec pool.

TEST(PoolFaultTest, WorkerDeathNeverLosesResults)
{
    exec::Pool pool(3);
    FaultPlan plan;
    plan.setRate(Site::WorkerDeath, 1.0);  // die after every task
    pool.armWorkerDeath(plan);

    for (int round = 0; round < 3; ++round) {
        std::vector<int> out(64, -1);
        exec::parallel_for(pool, out.size(), [&](std::size_t i) {
            out[i] = static_cast<int>(i * i);
        });
        // Help-first joins complete even as workers die around them,
        // and index-keyed slots make the results order-independent.
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
    EXPECT_LE(pool.deadWorkers(), 3u);
}

TEST(PoolFaultTest, SweepSurvivesWorkerDeath)
{
    // End to end: a dedicated dying pool is not available through the
    // harness (it uses the shared pool), so approximate with a direct
    // fork-join running real simulations.
    exec::Pool pool(2);
    FaultPlan plan;
    plan.setRate(Site::WorkerDeath, 0.5);
    pool.armWorkerDeath(plan);

    const auto &fop = workloads::byName("fop");
    harness::ExperimentOptions options;
    options.iterations = 2;
    options.time_limit_sec = 300;
    harness::Runner runner(options);

    std::vector<double> walls(6, 0.0);
    exec::parallel_for(pool, walls.size(), [&](std::size_t i) {
        const auto run =
            runner.runOnce(fop, gc::Algorithm::Serial,
                           fop.gc.gmd_mb * 2.0, static_cast<int>(i));
        walls[i] = run.timed.wall;
    });
    for (double w : walls)
        EXPECT_GT(w, 0.0);

    // Same cells serially: bit-identical despite the dying pool.
    for (std::size_t i = 0; i < walls.size(); ++i) {
        const auto run =
            runner.runOnce(fop, gc::Algorithm::Serial,
                           fop.gc.gmd_mb * 2.0, static_cast<int>(i));
        EXPECT_EQ(run.timed.wall, walls[i]);
    }
}

} // namespace
} // namespace capo::fault
