/**
 * @file
 * End-to-end shape tests: the paper's headline findings, asserted.
 *
 * These are the reproduction's acceptance criteria (DESIGN.md §4):
 * not absolute numbers, but who wins, by roughly what factor, and
 * where the crossovers fall. They run a reduced suite (a diverse
 * six-workload subset, single invocations) so the whole binary stays
 * in CI-friendly time.
 */

#include <gtest/gtest.h>

#include "harness/lbo_experiment.hh"
#include "metrics/request_synth.hh"
#include "metrics/summary.hh"
#include "workloads/registry.hh"

namespace capo {
namespace {

/** Diverse subset: tiny/huge heaps, fast/slow allocators, latency. */
const std::vector<std::string> kSubset = {
    "avrora", "biojava", "cassandra", "h2", "lusearch", "pmd", "xalan",
};

/** One shared sweep over the subset (computed once per binary). */
const std::vector<harness::WorkloadLbo> &
subsetSweep()
{
    static const auto result = [] {
        harness::LboSweepOptions sweep;
        sweep.factors = {1.5, 2.0, 3.0, 6.0};
        sweep.base.invocations = 1;
        sweep.base.iterations = 2;
        std::vector<harness::WorkloadLbo> out;
        for (const auto &name : kSubset)
            out.push_back(
                harness::runLboSweep(workloads::byName(name), sweep));
        return out;
    }();
    return result;
}

double
geomeanOverhead(const std::string &collector, double factor, bool wall)
{
    std::vector<double> values;
    for (const auto &w : subsetSweep()) {
        if (!w.completedAt(collector, factor))
            continue;
        const auto o = w.analysis.overhead(collector, factor);
        values.push_back(wall ? o.wall : o.cpu);
    }
    EXPECT_FALSE(values.empty()) << collector << " @ " << factor;
    return values.empty() ? 0.0 : metrics::geomean(values);
}

TEST(PaperShapes, CpuOverheadRegressesWithCollectorYear)
{
    // Figure 1(b): the newer the collector design, the higher its
    // total CPU overhead — Serial < Parallel < G1 < Shen/ZGC.
    const double serial = geomeanOverhead("Serial", 6.0, false);
    const double parallel = geomeanOverhead("Parallel", 6.0, false);
    const double g1 = geomeanOverhead("G1", 6.0, false);
    const double shen = geomeanOverhead("Shen.", 6.0, false);
    const double zgc = geomeanOverhead("ZGC*", 6.0, false);

    EXPECT_LT(serial, parallel);
    EXPECT_LT(parallel, g1);
    EXPECT_LT(g1, shen);
    EXPECT_LT(shen, zgc * 1.05);  // Shen ~ ZGC, both far above G1

    // Magnitudes: even the best case costs real CPU; the newest
    // collectors cost several times more.
    EXPECT_GT(serial, 1.03);
    EXPECT_LT(serial, 1.35);
    EXPECT_GT(zgc, 1.35);
}

TEST(PaperShapes, WallClockFavorsParallelAndG1)
{
    // Figure 1(a): Parallel and G1 have the lowest wall overheads at
    // generous heaps; Serial's single-threaded pauses cost more wall
    // time than any parallel design.
    const double serial = geomeanOverhead("Serial", 6.0, true);
    const double parallel = geomeanOverhead("Parallel", 6.0, true);
    const double g1 = geomeanOverhead("G1", 6.0, true);

    EXPECT_LT(parallel, serial);
    EXPECT_LT(g1, serial);
    EXPECT_LT(parallel, 1.25);
    EXPECT_LT(g1, 1.30);
}

TEST(PaperShapes, TimeSpaceTradeoffIsHyperbolic)
{
    // Overheads fall as the heap grows, steeply at first then
    // flattening (Figure 1's hockey stick).
    for (const char *collector : {"Serial", "Parallel", "G1", "Shen."}) {
        const double tight = geomeanOverhead(collector, 1.5, false);
        const double mid = geomeanOverhead(collector, 3.0, false);
        const double roomy = geomeanOverhead(collector, 6.0, false);
        EXPECT_GT(tight, mid * 0.999) << collector;
        EXPECT_GT(mid, roomy * 0.999) << collector;
        // Steeper between 1.5x and 3x than between 3x and 6x.
        EXPECT_GT(tight - mid, (mid - roomy) * 0.8) << collector;
    }
}

TEST(PaperShapes, ZgcCannotRunEverythingAtTightHeaps)
{
    // The plotted-points rule: ZGC (no compressed pointers) fails
    // some benchmarks below ~2x while Serial completes them.
    std::size_t zgc_done = 0, serial_done = 0;
    for (const auto &w : subsetSweep()) {
        zgc_done += w.completedAt("ZGC*", 1.5);
        serial_done += w.completedAt("Serial", 1.5);
    }
    EXPECT_EQ(serial_done, kSubset.size());
    EXPECT_LT(zgc_done, kSubset.size());
}

TEST(PaperShapes, CassandraTaskClockFarExceedsWallClock)
{
    // Figure 5(a,b): cassandra leaves cores idle; concurrent
    // collectors soak them up, so task-clock overhead >> wall-clock
    // overhead.
    for (const auto &w : subsetSweep()) {
        if (w.workload != "cassandra")
            continue;
        for (const char *collector : {"G1", "Shen.", "ZGC*"}) {
            if (!w.completedAt(collector, 3.0))
                continue;
            const auto o = w.analysis.overhead(collector, 3.0);
            EXPECT_GT(o.cpu - 1.0, 1.5 * (o.wall - 1.0))
                << collector;
        }
    }
}

TEST(PaperShapes, ShenandoahThrottlesLusearch)
{
    // Figure 5(c,d): on the suite's fastest allocator, Shenandoah's
    // wall overhead is enormous (> 2x) — pacing throttles the
    // mutator — while its wall/cpu gap is nothing like cassandra's.
    for (const auto &w : subsetSweep()) {
        if (w.workload != "lusearch")
            continue;
        ASSERT_TRUE(w.completedAt("Shen.", 2.0));
        const auto o = w.analysis.overhead("Shen.", 2.0);
        EXPECT_GT(o.wall, 2.0);
    }
}

TEST(PaperShapes, LatencyCollectorsDoNotWinOnH2)
{
    // Figure 6's story: h2's queries slow under the latency-oriented
    // collectors because concurrent work consumes the CPU the
    // queries need.
    harness::ExperimentOptions options;
    options.invocations = 1;
    options.iterations = 2;
    options.trace_rate = true;
    harness::Runner runner(options);

    const auto &h2 = workloads::byName("h2");
    auto median_latency = [&](gc::Algorithm algorithm) {
        const auto set = runner.run(h2, algorithm, 6.0);
        EXPECT_TRUE(set.allCompleted());
        const auto &run = set.runs.front();
        const auto &timed = run.iterations.back();
        auto requests = metrics::synthesizeRequests(
            run.rate_timeline, run.baseline_rate, h2.requests,
            timed.wall_begin, timed.wall_end, support::Rng(5));
        return metrics::quantile(requests.simpleLatencies(), 0.5);
    };

    const double g1 = median_latency(gc::Algorithm::G1);
    const double zgc = median_latency(gc::Algorithm::Zgc);
    const double shen = median_latency(gc::Algorithm::Shenandoah);
    EXPECT_GT(zgc, g1);
    EXPECT_GT(shen, g1);
}

TEST(PaperShapes, WarmupConvergesByIterationFive)
{
    // Section 4.3: the fifth iteration of default-size workloads is
    // well warmed up.
    harness::ExperimentOptions options;
    options.invocations = 1;
    options.iterations = 6;
    harness::Runner runner(options);
    for (const char *name : {"pmd", "xalan"}) {
        const auto set =
            runner.run(workloads::byName(name), gc::Algorithm::G1, 3.0);
        ASSERT_TRUE(set.allCompleted()) << name;
        const auto &iters = set.runs.front().iterations;
        double best = iters.back().wall();
        for (const auto &it : iters)
            best = std::min(best, it.wall());
        EXPECT_LE(iters[4].wall(), best * 1.06) << name;
        EXPECT_GT(iters[0].wall(), iters[4].wall()) << name;
    }
}

} // namespace
} // namespace capo
