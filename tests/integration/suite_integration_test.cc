/**
 * @file
 * Suite-wide integration invariants: every workload, run end to end
 * at the paper's default configuration (2x GMD, G1), must complete
 * and produce physically consistent measurements.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "metrics/footprint.hh"
#include "metrics/request_synth.hh"
#include "workloads/registry.hh"

namespace capo {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, RunsCleanlyAtDefaultConfiguration)
{
    const auto &workload = workloads::byName(GetParam());

    harness::ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 1;
    options.trace_rate = workload.latency_sensitive;
    harness::Runner runner(options);

    const auto set = runner.run(workload, gc::Algorithm::G1, 2.0);
    ASSERT_TRUE(set.allCompleted()) << workload.name;
    const auto &run = set.runs.front();

    // Physical consistency of the measurements.
    EXPECT_GT(run.wall, 0.0);
    EXPECT_GE(run.cpu, run.mutator_cpu);
    EXPECT_GT(run.gc_cpu, 0.0) << "GC ran";
    EXPECT_LE(run.log.stwWall(), run.wall);
    EXPECT_LE(run.log.stwCpu(), run.cpu);
    EXPECT_LE(run.cpu, run.wall * 32.0 * (1.0 + 1e-9))
        << "task clock cannot exceed wall x cpus";
    EXPECT_GT(run.collections, 0u);
    EXPECT_GT(run.total_allocated, 0.0);

    // The timed slice nests inside the whole run.
    EXPECT_LE(run.timed.wall, run.wall);
    EXPECT_LE(run.timed.stw_wall, run.timed.wall);

    // Footprint integration works on every log and stays within the
    // heap limit.
    const auto footprint =
        metrics::integrateFootprint(run.log, 0.0, run.wall);
    EXPECT_GT(footprint.samples, 0u);
    EXPECT_LE(footprint.peak_bytes,
              2.0 * workload.gc.gmd_mb * 1024 * 1024 * 1.001);

    // Latency-sensitive workloads synthesize their request profile.
    if (workload.latency_sensitive) {
        const auto &timed = run.iterations.back();
        const auto requests = metrics::synthesizeRequests(
            run.rate_timeline, run.baseline_rate, workload.requests,
            timed.wall_begin, timed.wall_end, support::Rng(1));
        EXPECT_GT(requests.size(), 100u);
        // Metered latency dominates simple latency event-by-event.
        const auto metered = requests.meteredLatencies(100e6);
        auto simple_sorted = requests.simpleLatencies();
        auto metered_sorted = metered;
        std::sort(simple_sorted.begin(), simple_sorted.end());
        std::sort(metered_sorted.begin(), metered_sorted.end());
        for (std::size_t q = 1; q <= 9; ++q) {
            EXPECT_GE(metrics::quantileSorted(metered_sorted, q * 0.1) +
                          1e-6,
                      metrics::quantileSorted(simple_sorted, q * 0.1));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::ValuesIn(workloads::names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace capo
