/**
 * @file
 * Golden-snapshot tests: small reference outputs for the paper's key
 * artifacts — the fig01 suite LBO geomean curve, the tab03 nominal
 * statistics table, and the figA heap timeline — checked in under
 * tests/golden/data/ and diffed against current output at a fixed
 * seed.
 *
 * The diff is numeric-tolerant (relative 1e-9) so cosmetic printf
 * differences never fail the suite while any real change in simulated
 * results does. On mismatch the current output lands next to the
 * golden file as "<name>.actual" for inspection (CI uploads these).
 *
 * Regenerating after an intentional behaviour change:
 *
 *     CAPO_REGEN_GOLDEN=1 ./build/tests/golden_test
 *
 * then review the diff and commit the updated files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/lbo_experiment.hh"
#include "harness/runner.hh"
#include "metrics/export.hh"
#include "report/artifact.hh"
#include "report/experiment.hh"
#include "report/table.hh"
#include "stats/stat_table.hh"
#include "support/strfmt.hh"
#include "workloads/registry.hh"

#ifndef CAPO_GOLDEN_DIR
#error "golden_test needs CAPO_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace capo {
namespace {

bool
regenerating()
{
    const char *env = std::getenv("CAPO_REGEN_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
goldenPath(const std::string &name)
{
    return std::string(CAPO_GOLDEN_DIR) + "/" + name;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << contents;
}

bool
parseNumber(const std::string &token, double &value)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    value = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
}

std::vector<std::string>
splitCells(const std::string &line)
{
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ','))
        out.push_back(cell);
    return out;
}

/**
 * Numeric-tolerant equality: cell-by-cell, numbers at relative 1e-9,
 * everything else exact. Returns a human-readable location of the
 * first difference, or empty when equal.
 */
std::string
diffTables(const std::string &expected, const std::string &actual)
{
    std::stringstream es(expected), as(actual);
    std::string eline, aline;
    int line_no = 0;
    for (;;) {
        const bool have_e = static_cast<bool>(std::getline(es, eline));
        const bool have_a = static_cast<bool>(std::getline(as, aline));
        ++line_no;
        if (!have_e && !have_a)
            return "";
        if (have_e != have_a) {
            return support::concat("line ", line_no, ": ",
                                   have_e ? "missing from actual"
                                          : "extra in actual");
        }
        const auto ecells = splitCells(eline);
        const auto acells = splitCells(aline);
        if (ecells.size() != acells.size()) {
            return support::concat("line ", line_no, ": ",
                                   ecells.size(), " vs ",
                                   acells.size(), " cells");
        }
        for (std::size_t c = 0; c < ecells.size(); ++c) {
            double ev, av;
            if (parseNumber(ecells[c], ev) &&
                parseNumber(acells[c], av)) {
                const double scale =
                    std::max(std::abs(ev), std::abs(av));
                if (std::abs(ev - av) > 1e-9 * std::max(scale, 1e-300))
                    return support::concat("line ", line_no, " cell ",
                                           c + 1, ": ", ecells[c],
                                           " vs ", acells[c]);
            } else if (ecells[c] != acells[c]) {
                return support::concat("line ", line_no, " cell ",
                                       c + 1, ": '", ecells[c],
                                       "' vs '", acells[c], "'");
            }
        }
    }
}

void
expectMatchesGolden(const std::string &name, const std::string &actual)
{
    const auto path = goldenPath(name);
    if (regenerating()) {
        writeFile(path, actual);
        std::cerr << "regenerated " << path << "\n";
        return;
    }
    std::string expected;
    if (!readFile(path, expected)) {
        writeFile(path + ".actual", actual);
        FAIL() << "missing golden file " << path
               << " — run CAPO_REGEN_GOLDEN=1 ./golden_test and "
                  "commit it (current output saved as .actual)";
    }
    const auto diff = diffTables(expected, actual);
    if (!diff.empty()) {
        writeFile(path + ".actual", actual);
        FAIL() << name << " diverged from golden (" << diff
               << "); current output saved to " << path
               << ".actual — if the change is intentional, regen "
                  "with CAPO_REGEN_GOLDEN=1";
    }
}

// ---------------------------------------------------------------------
// fig01: suite-wide LBO geomean curve at a fixed seed.

TEST(GoldenTest, Fig01SuiteLboGeomean)
{
    harness::LboSweepOptions sweep;
    sweep.factors = {2.0, 3.0};
    sweep.collectors = gc::productionCollectors();
    sweep.base.iterations = 2;
    sweep.base.invocations = 2;
    sweep.base.time_limit_sec = 300;
    sweep.base.jobs = 2;  // any value: results are jobs-invariant

    std::vector<harness::WorkloadLbo> per_workload;
    for (const char *name : {"fop", "luindex"}) {
        per_workload.push_back(
            harness::runLboSweep(workloads::byName(name), sweep));
    }
    const auto points = harness::aggregateSuiteLbo(per_workload, sweep);

    std::stringstream out;
    out << "collector,factor,plotted,completed,wall_geomean,"
           "cpu_geomean\n";
    for (const auto &p : points) {
        out << p.collector << "," << support::general(p.factor, 12)
            << "," << (p.plotted ? 1 : 0) << "," << p.completed << ","
            << support::general(p.wall_geomean, 12) << ","
            << support::general(p.cpu_geomean, 12) << "\n";
    }
    expectMatchesGolden("fig01_suite_lbo.csv", out.str());
}

// ---------------------------------------------------------------------
// tab03: the shipped nominal-statistics table (value, rank, score).

TEST(GoldenTest, Tab03NominalStats)
{
    const auto table = stats::shippedStats();
    std::stringstream out;
    out << "workload,metric,value,score,rank\n";
    for (const auto &workload : table.workloads()) {
        for (const auto &info : stats::catalog()) {
            const auto value = table.get(workload, info.id);
            if (!value)
                continue;
            const auto rs = table.rankScore(workload, info.id);
            out << workload << "," << info.code << ","
                << support::general(*value, 12) << "," << rs.score
                << "," << rs.rank << "\n";
        }
    }
    expectMatchesGolden("tab03_nominal_stats.csv", out.str());
}

// ---------------------------------------------------------------------
// figA: post-GC heap timeline of one fixed invocation.

TEST(GoldenTest, FigAHeapTimeline)
{
    harness::ExperimentOptions options;
    options.iterations = 2;
    options.time_limit_sec = 300;
    harness::Runner runner(options);
    const auto &fop = workloads::byName("fop");
    const auto run =
        runner.runOnce(fop, gc::Algorithm::G1, fop.gc.gmd_mb * 2.0, 0);
    ASSERT_TRUE(run.usable());

    std::stringstream out;
    metrics::exportHeapTimelineCsv(run.log, out);
    expectMatchesGolden("figA_heap_timeline.csv", out.str());
}

// ---------------------------------------------------------------------
// Registry-driven snapshots: experiments run hermetically through
// runRegistered (Discard-mode sink, no filesystem), and the typed
// result tables they put in the store are the snapshot — the same
// CSVs `capo-bench run <name> --artifacts` would land on disk.

/** Run a registered experiment and return one store table as CSV. */
std::string
registryTableCsv(const std::string &experiment_name,
                 const std::string &table_name,
                 const std::vector<std::string> &args)
{
    const report::Experiment *experiment =
        report::ExperimentRegistry::instance().find(experiment_name);
    if (experiment == nullptr) {
        ADD_FAILURE() << experiment_name
                      << " is not in the experiment registry";
        return "";
    }
    report::ArtifactSink sink(".",
                              report::ArtifactSink::Mode::Discard);
    report::ResultStore store;
    // Experiment bodies print their ASCII tables to stdout; capture
    // that so test output stays readable.
    std::stringstream stdout_capture;
    std::streambuf *old_buf = std::cout.rdbuf(stdout_capture.rdbuf());
    const int code =
        report::runRegistered(*experiment, args, sink, store);
    std::cout.rdbuf(old_buf);
    EXPECT_EQ(code, 0) << experiment_name << " exited nonzero";

    const report::ResultTable *table = store.find(table_name);
    if (table == nullptr) {
        ADD_FAILURE() << experiment_name << " produced no table '"
                      << table_name << "'";
        return "";
    }
    std::stringstream out;
    table->writeCsv(out);
    return out.str();
}

TEST(GoldenTest, Fig02MmuTableFromRegistry)
{
    expectMatchesGolden(
        "fig02_mmu.csv",
        registryTableCsv("fig02_mmu_pauses", "mmu", {}));
}

TEST(GoldenTest, Tab01MetricCatalogFromRegistry)
{
    expectMatchesGolden(
        "tab01_metric_catalog.csv",
        registryTableCsv("tab01_metric_catalog", "metric_catalog", {}));
}

TEST(GoldenTest, ExtOpenLoopTableFromRegistry)
{
    // The open-loop comparison table: closed-loop synthesis vs live
    // open-loop traffic, static vs adaptive pacing, two load factors.
    // Committing it pins the acceptance gaps (arrival p99 >= service
    // p99; adaptive utility > static in a saturating regime) into the
    // diffable record.
    expectMatchesGolden(
        "ext_openloop.csv",
        registryTableCsv("ext_openloop_pacing", "openloop", {}));
}

TEST(GoldenTest, EveryBenchAliasIsRegistered)
{
    // The CMake alias targets and the registry must agree: a bench
    // main that bypasses the registry would silently fall out of
    // capo-bench, the golden snapshots and the CI smoke sweep.
    for (const char *name :
         {"fig01_lbo_geomean", "fig02_mmu_pauses",
          "fig03_latency_cassandra", "fig04_pca", "fig05_lbo_cases",
          "fig06_latency_h2", "tab01_metric_catalog",
          "tab02_determinant", "tab03_nominal_all",
          "tab04_arch_sensitivity", "figA_lbo_per_benchmark",
          "figA_heap_timeline", "figA_latency_all", "tabA_minheap",
          "tabB_characterization", "tabC_bytecode", "ext_footprint",
          "ext_criticaljops", "ext_openloop_pacing",
          "ablation_collectors"}) {
        EXPECT_NE(report::ExperimentRegistry::instance().find(name),
                  nullptr)
            << name << " missing from the experiment registry";
    }
}

} // namespace
} // namespace capo
