/**
 * @file
 * Obs-layer tests: BenchSnapshot JSON round-trip through the strict
 * parser, the compare verdict arithmetic on synthetic snapshots (the
 * perf gate's decision procedure), and a recorder smoke run against a
 * real registered experiment (hence the capo_experiments link).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/compare.hh"
#include "obs/recorder.hh"
#include "obs/snapshot.hh"
#include "report/experiment.hh"
#include "trace/hot_metrics.hh"

namespace {

using namespace capo;

obs::Stat
stat(double mean, double ci95, std::size_t n = 5)
{
    obs::Stat s;
    s.mean = mean;
    s.ci95 = ci95;
    s.n = n;
    return s;
}

/** A fully populated snapshot for round-trip and compare tests. */
obs::BenchSnapshot
sampleSnapshot()
{
    obs::BenchSnapshot snapshot;
    snapshot.name = "harness";
    snapshot.experiment = "fig01_lbo_geomean";
    snapshot.args = {"--invocations", "1", "--iterations", "1"};
    snapshot.config_hash =
        obs::configHash(snapshot.experiment, snapshot.args);
    snapshot.jobs = 1;
    snapshot.hardware_threads = 8;
    snapshot.repeats = 5;
    snapshot.calibration_sec = 0.0125;
    snapshot.elapsed_sec = stat(1.5, 0.1);
    snapshot.normalized_cost = stat(120.0, 8.0);
    snapshot.cells_per_sec = stat(14.0, 0.9);
    snapshot.invocations_per_sec = stat(42.0, 2.0);
    snapshot.sim_events_per_sec = stat(1.0e6, 5.0e4);
    snapshot.scaling = {{1, 1.5, 1.0}, {2, 0.8, 1.875}};
    snapshot.hot_disabled_ns = 0.4;
    snapshot.hot_enabled_ns = 6.5;
    snapshot.hot = {{"sim.timer.queue_depth", 1000, 12.5, 8.0, 64.0}};
    return snapshot;
}

TEST(SnapshotJson, RoundTripsExactly)
{
    const obs::BenchSnapshot original = sampleSnapshot();
    const std::string text = obs::renderSnapshotJson(original);

    obs::BenchSnapshot parsed;
    std::string error;
    ASSERT_TRUE(obs::parseSnapshot(text, parsed, error)) << error;

    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.experiment, original.experiment);
    EXPECT_EQ(parsed.args, original.args);
    EXPECT_EQ(parsed.config_hash, original.config_hash);
    EXPECT_EQ(parsed.jobs, original.jobs);
    EXPECT_EQ(parsed.hardware_threads, original.hardware_threads);
    EXPECT_EQ(parsed.repeats, original.repeats);
    // %.17g emission: doubles survive bit-exact.
    EXPECT_EQ(parsed.calibration_sec, original.calibration_sec);
    EXPECT_EQ(parsed.elapsed_sec.mean, original.elapsed_sec.mean);
    EXPECT_EQ(parsed.elapsed_sec.ci95, original.elapsed_sec.ci95);
    EXPECT_EQ(parsed.elapsed_sec.n, original.elapsed_sec.n);
    EXPECT_EQ(parsed.normalized_cost.mean,
              original.normalized_cost.mean);
    EXPECT_EQ(parsed.sim_events_per_sec.mean,
              original.sim_events_per_sec.mean);
    ASSERT_EQ(parsed.scaling.size(), 2u);
    EXPECT_EQ(parsed.scaling[1].jobs, 2);
    EXPECT_EQ(parsed.scaling[1].speedup, original.scaling[1].speedup);
    EXPECT_EQ(parsed.hot_disabled_ns, original.hot_disabled_ns);
    ASSERT_EQ(parsed.hot.size(), 1u);
    EXPECT_EQ(parsed.hot[0].name, "sim.timer.queue_depth");
    EXPECT_EQ(parsed.hot[0].count, 1000u);
    EXPECT_EQ(parsed.hot[0].p99, 64.0);
}

TEST(SnapshotJson, RejectsGarbageAndWrongSchema)
{
    obs::BenchSnapshot parsed;
    std::string error;
    EXPECT_FALSE(obs::parseSnapshot("not json", parsed, error));
    EXPECT_FALSE(obs::parseSnapshot("{}", parsed, error));

    std::string text = obs::renderSnapshotJson(sampleSnapshot());
    text += "trailing";
    EXPECT_FALSE(obs::parseSnapshot(text, parsed, error));

    const std::string wrong_schema =
        "{\"schema\": 99, \"experiment\": \"x\"}";
    EXPECT_FALSE(obs::parseSnapshot(wrong_schema, parsed, error));
    EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(SnapshotJson, ConfigHashCoversNameAndArgs)
{
    const std::string base = obs::configHash("exp", {"--a", "1"});
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, obs::configHash("exp", {"--a", "1"}));
    EXPECT_NE(base, obs::configHash("exp2", {"--a", "1"}));
    EXPECT_NE(base, obs::configHash("exp", {"--a", "2"}));
    EXPECT_NE(base, obs::configHash("exp", {}));
}

TEST(Compare, NoChangeIsOk)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_FALSE(report.config_mismatch);
    EXPECT_FALSE(report.regressed());
    for (const auto &metric : report.metrics)
        EXPECT_EQ(metric.verdict, obs::Verdict::Ok) << metric.metric;
}

TEST(Compare, GatesOnNormalizedCostRegression)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // 50 % slower with tight CIs: disjoint AND past the threshold.
    candidate.normalized_cost = stat(180.0, 8.0);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_TRUE(report.regressed());
    ASSERT_FALSE(report.metrics.empty());
    EXPECT_EQ(report.metrics.front().metric, "normalized_cost");
    EXPECT_EQ(report.metrics.front().verdict,
              obs::Verdict::Regression);
    EXPECT_TRUE(report.metrics.front().gating);
}

TEST(Compare, OverlappingIntervalsNeverRegress)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // 50 % slower but the CIs overlap: an unrepeatable measurement,
    // not a verdict.
    candidate.normalized_cost = stat(180.0, 70.0);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_FALSE(report.regressed());
}

TEST(Compare, SmallSignificantDeltaIsNotARegression)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // 5 % slower with razor-thin CIs: real, but below the threshold.
    candidate.normalized_cost = stat(126.0, 0.5);
    obs::BenchSnapshot tight_base = baseline;
    tight_base.normalized_cost = stat(120.0, 0.5);
    const auto report = obs::compareSnapshots(tight_base, candidate);
    EXPECT_FALSE(report.regressed());
}

TEST(Compare, ImprovementIsReportedNotFatal)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    candidate.normalized_cost = stat(60.0, 4.0);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_FALSE(report.regressed());
    EXPECT_EQ(report.metrics.front().verdict,
              obs::Verdict::Improvement);
}

TEST(Compare, AdvisoryMetricsNeverGate)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // Harness-level throughput collapses but normalized cost and the
    // sim-event floor hold: advisory only.
    candidate.cells_per_sec = stat(2.0, 0.1);
    candidate.invocations_per_sec = stat(4.0, 0.2);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_FALSE(report.regressed());
    bool saw_regression_verdict = false;
    for (const auto &metric : report.metrics) {
        if (metric.verdict == obs::Verdict::Regression) {
            saw_regression_verdict = true;
            EXPECT_FALSE(metric.gating) << metric.metric;
        }
    }
    EXPECT_TRUE(saw_regression_verdict);
}

TEST(Compare, GatesOnNormalizedEventFloor)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // Sim throughput drops 10x with machine speed (calibration)
    // unchanged: per-event cost exploded, the gate must trip.
    candidate.sim_events_per_sec = stat(1.0e5, 5.0e3);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_TRUE(report.regressed());
    bool saw = false;
    for (const auto &metric : report.metrics) {
        if (metric.metric != "normalized_events")
            continue;
        saw = true;
        EXPECT_TRUE(metric.gating);
        EXPECT_EQ(metric.verdict, obs::Verdict::Regression);
    }
    EXPECT_TRUE(saw);
}

TEST(Compare, NormalizedEventFloorCancelsMachineSpeed)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // A machine half as fast: throughput halves AND the calibration
    // spin takes twice as long. The normalized floor must not trip.
    candidate.sim_events_per_sec = stat(5.0e5, 2.5e4);
    candidate.calibration_sec = baseline.calibration_sec * 2.0;
    candidate.elapsed_sec = stat(3.0, 0.2);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_FALSE(report.regressed());
}

TEST(Compare, GatesOnScalingCollapse)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    // The 2-job point degrades from 1.875x to serial speed.
    candidate.scaling[1].speedup = 1.0;
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_TRUE(report.regressed());
    bool saw = false;
    for (const auto &metric : report.metrics) {
        if (metric.metric != "scaling@2")
            continue;
        saw = true;
        EXPECT_TRUE(metric.gating);
        EXPECT_EQ(metric.verdict, obs::Verdict::Regression);
    }
    EXPECT_TRUE(saw);
}

TEST(Compare, HotTailBlowupIsReportedButAdvisory)
{
    obs::BenchSnapshot baseline = sampleSnapshot();
    baseline.hot.push_back(
        {"runtime.alloc.stall_ns", 500, 1.0e4, 8.0e3, 5.0e4});
    obs::BenchSnapshot candidate = baseline;
    // p99 blows up 20x while every mean-level metric holds: the row
    // must appear as a regression verdict without failing the gate.
    candidate.hot.back().p99 = 1.0e6;
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_FALSE(report.regressed());
    bool saw = false;
    for (const auto &metric : report.metrics) {
        if (metric.metric != "runtime.alloc.stall_ns.p99")
            continue;
        saw = true;
        EXPECT_FALSE(metric.gating);
        EXPECT_EQ(metric.verdict, obs::Verdict::Regression);
    }
    EXPECT_TRUE(saw);
}

TEST(Compare, ConfigMismatchFailsLoudly)
{
    const obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    candidate.args.push_back("--full");
    candidate.config_hash =
        obs::configHash(candidate.experiment, candidate.args);
    const auto report = obs::compareSnapshots(baseline, candidate);
    EXPECT_TRUE(report.config_mismatch);
    EXPECT_TRUE(report.regressed());
    EXPECT_NE(report.mismatch_detail.find("config hash"),
              std::string::npos);
}

TEST(Compare, UnmeasuredMetricsAreSkipped)
{
    obs::BenchSnapshot baseline = sampleSnapshot();
    obs::BenchSnapshot candidate = baseline;
    baseline.cells_per_sec = stat(0.0, 0.0, 0);  // never measured
    candidate.cells_per_sec = stat(99.0, 1.0);
    const auto report = obs::compareSnapshots(baseline, candidate);
    for (const auto &metric : report.metrics) {
        if (metric.metric == "cells_per_sec") {
            EXPECT_EQ(metric.verdict, obs::Verdict::Ok);
        }
    }
}

/** The end-to-end smoke: record a real registered experiment. */
TEST(Recorder, RecordsARegisteredExperiment)
{
    const auto *experiment =
        report::ExperimentRegistry::instance().find(
            "tab01_metric_catalog");
    ASSERT_NE(experiment, nullptr);

    obs::RecorderOptions options;
    options.label = "smoke";
    options.repeats = 2;
    options.measure_overhead = false;

    const obs::BenchSnapshot snapshot =
        obs::recordExperiment(*experiment, {}, options);

    EXPECT_EQ(snapshot.experiment, "tab01_metric_catalog");
    EXPECT_EQ(snapshot.config_hash,
              obs::configHash("tab01_metric_catalog", {}));
    EXPECT_EQ(snapshot.repeats, 2);
    EXPECT_GT(snapshot.calibration_sec, 0.0);
    EXPECT_GT(snapshot.elapsed_sec.mean, 0.0);
    EXPECT_EQ(snapshot.elapsed_sec.n, 2u);
    EXPECT_GT(snapshot.normalized_cost.mean, 0.0);
    // The recorder must leave the hot tier the way it found it
    // (disabled by default in tests).
    EXPECT_FALSE(trace::hot::enabled());

    // Round-trip what the recorder produced.
    const std::string text = obs::renderSnapshotJson(snapshot);
    obs::BenchSnapshot parsed;
    std::string error;
    ASSERT_TRUE(obs::parseSnapshot(text, parsed, error)) << error;
    EXPECT_EQ(parsed.config_hash, snapshot.config_hash);
}

TEST(Recorder, HandicapSlowsTheMeasurement)
{
    // The perf gate's acceptance hinge: an injected slowdown must
    // show up in the recorded cost, deterministically.
    const auto *experiment =
        report::ExperimentRegistry::instance().find(
            "tab01_metric_catalog");
    ASSERT_NE(experiment, nullptr);

    obs::RecorderOptions fast;
    fast.repeats = 2;
    fast.measure_overhead = false;
    const obs::BenchSnapshot base =
        obs::recordExperiment(*experiment, {}, fast);

    obs::RecorderOptions slow = fast;
    slow.handicap_ms = 200.0;
    const obs::BenchSnapshot handicapped =
        obs::recordExperiment(*experiment, {}, slow);

    EXPECT_GT(handicapped.elapsed_sec.mean,
              base.elapsed_sec.mean + 0.15);
    const auto report = obs::compareSnapshots(base, handicapped);
    EXPECT_TRUE(report.regressed());
}

} // namespace
