/**
 * @file
 * Tests for the machine model and the simulated perf counter session.
 */

#include <gtest/gtest.h>

#include "counters/machine.hh"
#include "counters/perf_session.hh"
#include "workloads/registry.hh"

namespace capo::counters {
namespace {

TEST(MachineTest, BaselineHasUnitMultiplier)
{
    const auto machine = MachineConfig::baseline();
    for (const auto &d : workloads::suite())
        EXPECT_DOUBLE_EQ(steadyWorkMultiplier(machine, d), 1.0);
}

TEST(MachineTest, KnobsApplyPublishedSensitivities)
{
    const auto &h2 = workloads::byName("h2");  // PMS 40, PLS 31

    MachineConfig slow_mem;
    slow_mem.slow_memory = true;
    EXPECT_NEAR(steadyWorkMultiplier(slow_mem, h2), 1.40, 1e-9);

    MachineConfig small_llc;
    small_llc.small_llc = true;
    EXPECT_NEAR(steadyWorkMultiplier(small_llc, h2), 1.31, 1e-9);

    MachineConfig boost;
    boost.freq_boost = true;
    EXPECT_NEAR(steadyWorkMultiplier(boost, h2), 1.0 / 1.05, 1e-9);

    MachineConfig interp;
    interp.compiler = MachineConfig::Compiler::Interpreter;
    EXPECT_NEAR(steadyWorkMultiplier(interp, h2), 1.55, 1e-9);

    MachineConfig arm;
    arm.arch = MachineConfig::Arch::NeoverseN1;
    EXPECT_NEAR(steadyWorkMultiplier(arm, h2), 2.27, 1e-9);
}

TEST(MachineTest, NegativeSensitivitySpeedsUp)
{
    // sunflow's PLS is -2: shrinking the LLC *helps* slightly.
    const auto &sunflow = workloads::byName("sunflow");
    MachineConfig small_llc;
    small_llc.small_llc = true;
    EXPECT_LT(steadyWorkMultiplier(small_llc, sunflow), 1.0);
}

TEST(MachineTest, ForcedC2CostsOnlyWarmup)
{
    const auto &fop = workloads::byName("fop");  // PCC 1083
    MachineConfig c2;
    c2.compiler = MachineConfig::Compiler::ForcedC2;
    EXPECT_DOUBLE_EQ(steadyWorkMultiplier(c2, fop), 1.0);
    EXPECT_NEAR(warmupExtraMultiplier(c2, fop), 11.83, 1e-9);
    EXPECT_DOUBLE_EQ(
        warmupExtraMultiplier(MachineConfig::baseline(), fop), 1.0);
}

runtime::ExecutionResult
fakeResult(double mutator_cpu, double gc_cpu)
{
    runtime::ExecutionResult r;
    r.mutator_cpu = mutator_cpu;
    r.gc_cpu = gc_cpu;
    r.cpu = mutator_cpu + gc_cpu;
    return r;
}

TEST(PerfSessionTest, PureMutatorMatchesWorkloadProfile)
{
    const auto &d = workloads::byName("biojava");
    const auto readings = readCounters(fakeResult(1e9, 0.0), d,
                                       MachineConfig::baseline());
    EXPECT_NEAR(readings.uip(), d.uarch.uip, 0.1);
    EXPECT_NEAR(readings.udc(), d.uarch.udc, 0.1);
    EXPECT_NEAR(readings.ull(), d.uarch.ull, 1.0);
    EXPECT_NEAR(readings.usf(), d.uarch.usf, 0.1);
    EXPECT_NEAR(readings.pkp(), d.perf.pkp, 0.1);
    EXPECT_DOUBLE_EQ(readings.task_clock_ns, 1e9);
}

TEST(PerfSessionTest, GcCpuShiftsRatesTowardGcProfile)
{
    const auto &d = workloads::byName("biojava");  // very high IPC
    const auto app_only = readCounters(fakeResult(1e9, 0.0), d,
                                       MachineConfig::baseline());
    const auto with_gc = readCounters(fakeResult(1e9, 1e9), d,
                                      MachineConfig::baseline());
    // Collector code is memory-bound: blended IPC falls, miss rates
    // rise.
    EXPECT_LT(with_gc.uip(), app_only.uip());
    EXPECT_GT(with_gc.ull(), app_only.ull());
    EXPECT_DOUBLE_EQ(with_gc.task_clock_ns, 2e9);
}

TEST(PerfSessionTest, CountersScaleLinearlyWithWork)
{
    const auto &d = workloads::byName("kafka");
    const auto one = readCounters(fakeResult(1e9, 2e8), d,
                                  MachineConfig::baseline());
    const auto two = readCounters(fakeResult(2e9, 4e8), d,
                                  MachineConfig::baseline());
    EXPECT_NEAR(two.instructions, 2.0 * one.instructions,
                one.instructions * 1e-9);
    EXPECT_NEAR(two.llc_misses, 2.0 * one.llc_misses,
                one.llc_misses * 1e-9);
    // Rates are intensive: unchanged.
    EXPECT_NEAR(two.uip(), one.uip(), 1e-9);
}

} // namespace
} // namespace capo::counters
