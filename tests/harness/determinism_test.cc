/**
 * @file
 * Parallel-replay determinism: any --jobs value must produce results
 * and traces bit-identical to a serial run. These tests are also the
 * ThreadSanitizer smoke target (the CI TSan job runs them).
 */

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/lbo_experiment.hh"
#include "harness/minheap.hh"
#include "harness/runner.hh"
#include "metrics/export.hh"
#include "trace/chrome_export.hh"
#include "trace/sink.hh"
#include "workloads/registry.hh"

namespace capo::harness {
namespace {

ExperimentOptions
baseOptions(int jobs)
{
    ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 4;
    options.time_limit_sec = 300;
    options.jobs = jobs;
    return options;
}

void
expectRunsIdentical(const runtime::ExecutionResult &a,
                    const runtime::ExecutionResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.oom, b.oom);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.wall, b.wall);  // bitwise, not approximate
    EXPECT_EQ(a.cpu, b.cpu);
    EXPECT_EQ(a.mutator_cpu, b.mutator_cpu);
    EXPECT_EQ(a.gc_cpu, b.gc_cpu);
    EXPECT_EQ(a.total_allocated, b.total_allocated);
    EXPECT_EQ(a.collections, b.collections);
    EXPECT_EQ(a.stall_count, b.stall_count);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.timed.wall, b.timed.wall);
    EXPECT_EQ(a.timed.cpu, b.timed.cpu);
    EXPECT_EQ(a.timed.stw_wall, b.timed.stw_wall);
    EXPECT_EQ(a.timed.stw_cpu, b.timed.stw_cpu);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].wall_begin, b.iterations[i].wall_begin);
        EXPECT_EQ(a.iterations[i].wall_end, b.iterations[i].wall_end);
    }
}

TEST(DeterminismTest, InvocationSetBitIdenticalAcrossJobs)
{
    const auto &fop = workloads::byName("fop");
    Runner serial(baseOptions(1));
    Runner parallel(baseOptions(8));
    const auto a = serial.run(fop, gc::Algorithm::G1, 2.0);
    const auto b = parallel.run(fop, gc::Algorithm::G1, 2.0);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        expectRunsIdentical(a.runs[i], b.runs[i]);
}

TEST(DeterminismTest, LboTablesIdenticalAcrossJobsAllCollectors)
{
    // The full production-collector set (all five), exported to the
    // CSV stat table: the serial and 8-way tables must match byte for
    // byte.
    LboSweepOptions sweep;
    sweep.factors = {2.0, 3.0};
    sweep.collectors = gc::productionCollectors();
    sweep.base = baseOptions(1);
    sweep.base.invocations = 2;
    ASSERT_EQ(sweep.collectors.size(), 5u);

    const auto &fop = workloads::byName("fop");
    const auto serial = runLboSweep(fop, sweep);

    sweep.base.jobs = 8;
    const auto parallel = runLboSweep(fop, sweep);

    EXPECT_EQ(serial.dispatches, parallel.dispatches);
    for (auto algorithm : sweep.collectors) {
        const std::string name = gc::algorithmName(algorithm);
        for (double factor : sweep.factors) {
            EXPECT_EQ(serial.completedAt(name, factor),
                      parallel.completedAt(name, factor));
        }
    }

    std::stringstream a, b;
    metrics::exportLboCsv(serial.analysis, a);
    metrics::exportLboCsv(parallel.analysis, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(DeterminismTest, MinHeapGridIdenticalAcrossJobs)
{
    const std::vector<std::string> workloads = {"fop", "luindex"};
    const std::vector<gc::Algorithm> collectors = {
        gc::Algorithm::Serial, gc::Algorithm::G1};

    auto options = baseOptions(1);
    options.invocations = 1;
    const auto serial =
        findMinHeapGrid(workloads, collectors, options, 0.05);

    options.jobs = 8;
    const auto parallel =
        findMinHeapGrid(workloads, collectors, options, 0.05);

    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].workload, parallel.cells[i].workload);
        EXPECT_EQ(serial.cells[i].result.min_heap_mb,
                  parallel.cells[i].result.min_heap_mb);
        EXPECT_EQ(serial.cells[i].result.probes,
                  parallel.cells[i].result.probes);
        EXPECT_EQ(serial.cells[i].result.converged,
                  parallel.cells[i].result.converged);
    }
}

void
expectSinksIdentical(const trace::TraceSink &a, const trace::TraceSink &b)
{
    ASSERT_EQ(a.trackCount(), b.trackCount());
    for (trace::TrackId t = 0; t < a.trackCount(); ++t) {
        EXPECT_EQ(a.trackName(t), b.trackName(t));
        const auto ea = a.events(t);
        const auto eb = b.events(t);
        ASSERT_EQ(ea.size(), eb.size()) << "track " << a.trackName(t);
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_STREQ(ea[i].name, eb[i].name);
            EXPECT_EQ(ea[i].ts, eb[i].ts);
            EXPECT_EQ(ea[i].value, eb[i].value);
            EXPECT_EQ(ea[i].cat, eb[i].cat);
            EXPECT_EQ(ea[i].kind, eb[i].kind);
        }
    }
}

TEST(DeterminismTest, ParallelTraceIsIdenticalToSerialTrace)
{
    const auto &fop = workloads::byName("fop");

    trace::TraceSink serial_sink, parallel_sink;
    auto serial_options = baseOptions(1);
    serial_options.trace = &serial_sink;
    auto parallel_options = baseOptions(8);
    parallel_options.trace = &parallel_sink;

    Runner(serial_options).run(fop, gc::Algorithm::G1, 2.0);
    Runner(parallel_options).run(fop, gc::Algorithm::G1, 2.0);

    expectSinksIdentical(serial_sink, parallel_sink);
}

TEST(DeterminismTest, WarmPoolsMatchFreshConstruction)
{
    // Dirty-reuse trap for the per-worker pools (arena, world,
    // collector, memoized setup, shard freelist): a cell run on warm
    // pools — right after a *different* cell, and then right after
    // itself — must be bitwise identical to the same cell run with
    // every cache cleared. Results and trace shards both count.
    const auto &fop = workloads::byName("fop");
    const auto &luindex = workloads::byName("luindex");
    auto options = baseOptions(1);
    options.invocations = 2;

    // Fresh-construction baseline for the probed cell.
    clearWorkerCaches();
    trace::TraceSink fresh_sink;
    auto fresh_options = options;
    fresh_options.trace = &fresh_sink;
    const auto fresh =
        Runner(fresh_options).run(luindex, gc::Algorithm::Zgc, 2.0);

    // Dirty the pools with an unrelated cell, then re-run the probed
    // cell twice: the first reuse crosses cells, the second reuses
    // state its own previous run left behind.
    clearWorkerCaches();
    {
        trace::TraceSink scratch_sink;
        auto warm_options = options;
        warm_options.trace = &scratch_sink;
        Runner(warm_options).run(fop, gc::Algorithm::G1, 3.0);
    }
    for (int round = 0; round < 2; ++round) {
        trace::TraceSink warm_sink;
        auto warm_options = options;
        warm_options.trace = &warm_sink;
        const auto warm = Runner(warm_options)
                              .run(luindex, gc::Algorithm::Zgc, 2.0);
        ASSERT_EQ(fresh.runs.size(), warm.runs.size());
        for (std::size_t i = 0; i < fresh.runs.size(); ++i)
            expectRunsIdentical(fresh.runs[i], warm.runs[i]);
        expectSinksIdentical(fresh_sink, warm_sink);
    }

    // And the same cell fanned out on warm pool workers (j8) must
    // still match the fresh serial baseline.
    trace::TraceSink parallel_sink;
    auto parallel_options = baseOptions(8);
    parallel_options.invocations = 2;
    parallel_options.trace = &parallel_sink;
    const auto parallel = Runner(parallel_options)
                              .run(luindex, gc::Algorithm::Zgc, 2.0);
    ASSERT_EQ(fresh.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < fresh.runs.size(); ++i)
        expectRunsIdentical(fresh.runs[i], parallel.runs[i]);
    expectSinksIdentical(fresh_sink, parallel_sink);
    clearWorkerCaches();
}

TEST(DeterminismTest, ParallelTraceExportIsNestedAndMonotonic)
{
    const auto &fop = workloads::byName("fop");
    trace::TraceSink sink;
    auto options = baseOptions(8);
    options.trace = &sink;
    Runner(options).run(fop, gc::Algorithm::G1, 2.0);

    // Harness track: one well-nested span per invocation, laid end to
    // end in invocation order.
    trace::TrackId harness_track = 0;
    bool found = false;
    for (trace::TrackId t = 0; t < sink.trackCount(); ++t) {
        if (sink.trackName(t) == "harness") {
            harness_track = t;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    const auto events = sink.events(harness_track);
    int depth = 0;
    int spans = 0;
    double last_ts = 0.0;
    for (const auto &e : events) {
        EXPECT_GE(e.ts, last_ts) << "harness timeline must be monotonic";
        last_ts = e.ts;
        if (e.kind == trace::EventKind::SpanBegin)
            ++depth;
        if (e.kind == trace::EventKind::SpanEnd) {
            --depth;
            ++spans;
        }
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(spans, options.invocations);

    // Every invocation label appears in order.
    int next_inv = 0;
    for (const auto &e : events) {
        if (e.kind == trace::EventKind::SpanBegin) {
            const std::string label =
                "fop/G1 inv" + std::to_string(next_inv++);
            EXPECT_EQ(std::string(e.name), label);
        }
    }

    // The Chrome exporter (which sorts globally) accepts the merged
    // timeline.
    std::stringstream out;
    EXPECT_GT(trace::writeChromeTrace(sink, out), 0u);
}

} // namespace
} // namespace capo::harness
