/**
 * @file
 * Tests for the experiment-definition file parser.
 */

#include <gtest/gtest.h>

#include "harness/plan_file.hh"

namespace capo::harness {
namespace {

TEST(PlanFileTest, DefaultsToFullSuiteLbo)
{
    const auto plan = parsePlan("");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::Lbo);
    EXPECT_EQ(plan.workloads.size(), 22u);
    EXPECT_EQ(plan.collectors.size(), 5u);
    EXPECT_EQ(plan.heap_factors, std::vector<double>{2.0});
}

TEST(PlanFileTest, ParsesFullDefinition)
{
    const auto plan = parsePlan(R"(
        # a comment
        experiment   = minheap
        workloads    = lusearch, h2   # trailing comment
        collectors   = serial, zgc
        heap_factors = 1.5, 2, 6
        iterations   = 4
        invocations  = 7
        jobs         = 4
        size         = small
        seed         = 99
    )");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::MinHeap);
    EXPECT_EQ(plan.workloads,
              (std::vector<std::string>{"lusearch", "h2"}));
    ASSERT_EQ(plan.collectors.size(), 2u);
    EXPECT_EQ(plan.collectors[0], gc::Algorithm::Serial);
    EXPECT_EQ(plan.collectors[1], gc::Algorithm::Zgc);
    EXPECT_EQ(plan.heap_factors, (std::vector<double>{1.5, 2.0, 6.0}));
    EXPECT_EQ(plan.options.iterations, 4);
    EXPECT_EQ(plan.options.invocations, 7);
    EXPECT_EQ(plan.options.size, workloads::SizeConfig::Small);
    EXPECT_EQ(plan.options.base_seed, 99u);
    EXPECT_EQ(plan.options.jobs, 4);
}

TEST(PlanFileTest, JobsKeyRoundTrip)
{
    // Default is serial; 0 means "all hardware threads".
    EXPECT_EQ(parsePlan("").options.jobs, 1);
    EXPECT_EQ(parsePlan("jobs = 0\n").options.jobs, 0);
    EXPECT_EQ(parsePlan("jobs = 16\n").options.jobs, 16);
}

TEST(PlanFileTest, LatencyFiltersToLatencySensitive)
{
    const auto plan = parsePlan("experiment = latency\n"
                                "workloads = all\n");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::Latency);
    EXPECT_EQ(plan.workloads.size(), 9u);
    EXPECT_TRUE(plan.options.trace_rate);
}

TEST(PlanFileTest, CollectorGroups)
{
    EXPECT_EQ(parsePlan("collectors = production\n").collectors.size(),
              5u);
    EXPECT_EQ(parsePlan("collectors = all\n").collectors.size(), 6u);
}

TEST(PlanFileTest, WorkloadGroups)
{
    EXPECT_EQ(parsePlan("workloads = latency\n").workloads.size(), 9u);
    EXPECT_EQ(parsePlan("workloads = all\n").workloads.size(), 22u);
}

TEST(PlanFileDeathTest, RejectsMalformedInput)
{
    EXPECT_EXIT(parsePlan("no equals sign here\n"),
                ::testing::ExitedWithCode(1), "expected key = value");
    EXPECT_EXIT(parsePlan("workloads = quake\n"),
                ::testing::ExitedWithCode(1), "unknown workload");
    EXPECT_EXIT(parsePlan("experiment = frobnicate\n"),
                ::testing::ExitedWithCode(1), "unknown experiment");
    EXPECT_EXIT(parsePlan("bogus_key = 1\n"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parsePlan("heap_factors = soon\n"),
                ::testing::ExitedWithCode(1), "bad heap factor");
    EXPECT_EXIT(parsePlan("jobs = -2\n"),
                ::testing::ExitedWithCode(1), "jobs must be >= 0");
    EXPECT_EXIT(parsePlan("jobs = many\n"),
                ::testing::ExitedWithCode(1), "bad jobs");
    EXPECT_EXIT(loadPlan("/nonexistent/plan.capo"),
                ::testing::ExitedWithCode(1), "cannot read");
}

} // namespace
} // namespace capo::harness
