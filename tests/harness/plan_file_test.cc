/**
 * @file
 * Tests for the experiment-definition file parser.
 */

#include <gtest/gtest.h>

#include "harness/plan_file.hh"

namespace capo::harness {
namespace {

TEST(PlanFileTest, DefaultsToFullSuiteLbo)
{
    const auto plan = parsePlan("");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::Lbo);
    EXPECT_EQ(plan.workloads.size(), 22u);
    EXPECT_EQ(plan.collectors.size(), 5u);
    EXPECT_EQ(plan.heap_factors, std::vector<double>{2.0});
}

TEST(PlanFileTest, ParsesFullDefinition)
{
    const auto plan = parsePlan(R"(
        # a comment
        experiment   = minheap
        workloads    = lusearch, h2   # trailing comment
        collectors   = serial, zgc
        heap_factors = 1.5, 2, 6
        iterations   = 4
        invocations  = 7
        jobs         = 4
        size         = small
        seed         = 99
    )");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::MinHeap);
    EXPECT_EQ(plan.workloads,
              (std::vector<std::string>{"lusearch", "h2"}));
    ASSERT_EQ(plan.collectors.size(), 2u);
    EXPECT_EQ(plan.collectors[0], gc::Algorithm::Serial);
    EXPECT_EQ(plan.collectors[1], gc::Algorithm::Zgc);
    EXPECT_EQ(plan.heap_factors, (std::vector<double>{1.5, 2.0, 6.0}));
    EXPECT_EQ(plan.options.iterations, 4);
    EXPECT_EQ(plan.options.invocations, 7);
    EXPECT_EQ(plan.options.size, workloads::SizeConfig::Small);
    EXPECT_EQ(plan.options.base_seed, 99u);
    EXPECT_EQ(plan.options.jobs, 4);
}

TEST(PlanFileTest, JobsKeyRoundTrip)
{
    // Default is serial; 0 means "all hardware threads".
    EXPECT_EQ(parsePlan("").options.jobs, 1);
    EXPECT_EQ(parsePlan("jobs = 0\n").options.jobs, 0);
    EXPECT_EQ(parsePlan("jobs = 16\n").options.jobs, 16);
}

TEST(PlanFileTest, LatencyFiltersToLatencySensitive)
{
    const auto plan = parsePlan("experiment = latency\n"
                                "workloads = all\n");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::Latency);
    EXPECT_EQ(plan.workloads.size(), 9u);
    EXPECT_TRUE(plan.options.trace_rate);
}

TEST(PlanFileTest, ParsesOpenLoopKeys)
{
    const auto plan = parsePlan(R"(
        experiment = openloop
        workloads  = all
        arrival    = onoff
        rate       = 0.5, 0.9, 1.2
        burst      = 6 : 0.25
        pacing     = static, adaptive
    )");
    EXPECT_EQ(plan.kind, ExperimentPlan::Kind::OpenLoop);
    EXPECT_EQ(plan.workloads.size(), 9u); // latency-sensitive only
    EXPECT_EQ(plan.arrival.kind, load::ArrivalKind::OnOff);
    EXPECT_EQ(plan.load_factors, (std::vector<double>{0.5, 0.9, 1.2}));
    EXPECT_DOUBLE_EQ(plan.arrival.burst_ratio, 6.0);
    EXPECT_DOUBLE_EQ(plan.arrival.burst_duty, 0.25);
    EXPECT_EQ(plan.pacing_modes,
              (std::vector<std::string>{"static", "adaptive"}));
}

TEST(PlanFileTest, OpenLoopKeyJunkIsParseError)
{
    EXPECT_THROW(parsePlan("arrival = sawtooth\n"), ParseError);
    EXPECT_THROW(parsePlan("rate = 0.5, -1\n"), ParseError);
    EXPECT_THROW(parsePlan("rate = \n"), ParseError);
    EXPECT_THROW(parsePlan("burst = 4\n"), ParseError);
    EXPECT_THROW(parsePlan("burst = 0.5:0.3\n"), ParseError);
    EXPECT_THROW(parsePlan("burst = 4:1.5\n"), ParseError);
    EXPECT_THROW(parsePlan("pacing = closed, turbo\n"), ParseError);
    EXPECT_THROW(parsePlan("experiment = openloop\n"
                           "workloads = fop\n"),
                 ParseError); // no latency-sensitive workload
}

TEST(PlanFileTest, CollectorGroups)
{
    EXPECT_EQ(parsePlan("collectors = production\n").collectors.size(),
              5u);
    EXPECT_EQ(parsePlan("collectors = all\n").collectors.size(), 6u);
}

TEST(PlanFileTest, WorkloadGroups)
{
    EXPECT_EQ(parsePlan("workloads = latency\n").workloads.size(), 9u);
    EXPECT_EQ(parsePlan("workloads = all\n").workloads.size(), 22u);
}

/** parsePlan(text) must throw a ParseError mentioning @p needle. */
void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        parsePlan(text);
        FAIL() << "no ParseError for: " << text;
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "message \"" << e.what() << "\" lacks \"" << needle
            << "\"";
    }
}

TEST(PlanFileTest, RejectsMalformedInput)
{
    expectParseError("no equals sign here\n", "expected key = value");
    expectParseError("workloads = quake\n", "unknown workload");
    expectParseError("experiment = frobnicate\n", "unknown experiment");
    expectParseError("bogus_key = 1\n", "unknown key");
    expectParseError("heap_factors = soon\n", "bad heap factor");
    expectParseError("jobs = -2\n", "jobs must be >= 0");
    expectParseError("jobs = many\n", "bad jobs");
    EXPECT_THROW(loadPlan("/nonexistent/plan.capo"), ParseError);
}

TEST(PlanFileTest, RejectsMalformedNumericValues)
{
    // These crashed (uncaught std::invalid_argument / out_of_range)
    // before the conversions were guarded.
    expectParseError("iterations = abc\n", "bad iterations");
    expectParseError("iterations = 0\n", "iterations must be >= 1");
    expectParseError("invocations = 5x\n", "bad invocations");
    expectParseError("invocations = 99999999999999999999\n",
                     "bad invocations");
    expectParseError("seed = -3\n", "bad seed");
    expectParseError("seed = banana\n", "bad seed");
    expectParseError("heap_factors = 0\n",
                     "heap factor must be positive");
    expectParseError("retries = -1\n", "retries must be >= 0");
    expectParseError("faults = alloc=2.0\n", "rate");
    expectParseError("trace_categories = bogus\n",
                     "unknown trace category");
}

TEST(PlanFileTest, ParsesResilienceKeys)
{
    const auto plan = parsePlan("faults = alloc=0.01,gc=0.005\n"
                                "fault_seed = 7\n"
                                "retries = 2\n"
                                "checkpoint = run.ckpt\n");
    EXPECT_TRUE(plan.options.faults.enabled());
    EXPECT_DOUBLE_EQ(plan.options.faults.rate(fault::Site::AllocOom),
                     0.01);
    EXPECT_DOUBLE_EQ(
        plan.options.faults.rate(fault::Site::GcPhaseAbort), 0.005);
    EXPECT_EQ(plan.options.faults.seed, 7u);
    EXPECT_EQ(plan.options.retries, 2);
    EXPECT_EQ(plan.checkpoint, "run.ckpt");
}

TEST(PlanFileTest, ParseErrorCarriesLineNumber)
{
    try {
        parsePlan("jobs = 1\n\nworkloads = quake\n");
        FAIL() << "no ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

} // namespace
} // namespace capo::harness
