/**
 * @file
 * Integration tests for the experiment harness: runner, min-heap
 * search, LBO sweeps and characterization.
 */

#include <gtest/gtest.h>

#include "harness/characterize.hh"
#include "harness/lbo_experiment.hh"
#include "harness/minheap.hh"
#include "harness/runner.hh"
#include "workloads/registry.hh"

namespace capo::harness {
namespace {

ExperimentOptions
quickOptions()
{
    ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 2;
    options.time_limit_sec = 300;
    return options;
}

TEST(RunnerTest, RunsRequestedInvocations)
{
    Runner runner(quickOptions());
    const auto &fop = workloads::byName("fop");
    const auto set = runner.run(fop, gc::Algorithm::G1, 2.0);
    ASSERT_EQ(set.runs.size(), 2u);
    EXPECT_TRUE(set.allCompleted());
    const auto cost = set.meanTimedCost();
    EXPECT_GT(cost.wall, 0.0);
    EXPECT_GE(cost.cpu, cost.wall);  // width > 1
    EXPECT_GE(cost.stw_wall, 0.0);
    EXPECT_LE(cost.stw_wall, cost.wall);
}

TEST(RunnerTest, InvocationsDifferButAreSeedStable)
{
    auto options = quickOptions();
    Runner runner(options);
    // avrora ships a nonzero PSD, so invocations carry noise.
    const auto &avrora = workloads::byName("avrora");
    const auto a = runner.run(avrora, gc::Algorithm::Serial, 2.0);
    const auto b = runner.run(avrora, gc::Algorithm::Serial, 2.0);
    // Same seeds -> identical; different invocations -> noise.
    ASSERT_EQ(a.timedWalls().size(), 2u);
    EXPECT_DOUBLE_EQ(a.timedWalls()[0], b.timedWalls()[0]);
    EXPECT_NE(a.timedWalls()[0], a.timedWalls()[1]);
}

TEST(RunnerTest, TinyHeapFailsCleanly)
{
    Runner runner(quickOptions());
    const auto &fop = workloads::byName("fop");
    const auto set = runner.runAtHeapMb(fop, gc::Algorithm::G1, 6.0);
    EXPECT_FALSE(set.allCompleted());
    for (const auto &run : set.runs)
        EXPECT_TRUE(run.oom);
}

TEST(MinHeapTest, FindsBracketNearShippedGmd)
{
    auto options = quickOptions();
    const auto &fop = workloads::byName("fop");
    const auto result =
        findMinHeapMb(fop, gc::Algorithm::G1, options, 0.02);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.probes, 3);
    // The emergent minimum should be within ~35 % of the paper's GMD
    // (live_fraction calibration target).
    EXPECT_GT(result.min_heap_mb, fop.gc.gmd_mb * 0.65);
    EXPECT_LT(result.min_heap_mb, fop.gc.gmd_mb * 1.35);
}

TEST(MinHeapTest, ConcurrentCollectorsNeedMoreHeap)
{
    auto options = quickOptions();
    const auto &luindex = workloads::byName("luindex");
    const auto g1 = findMinHeapMb(luindex, gc::Algorithm::G1, options);
    const auto zgc = findMinHeapMb(luindex, gc::Algorithm::Zgc, options);
    EXPECT_TRUE(g1.converged);
    EXPECT_TRUE(zgc.converged);
    // ZGC runs without compressed pointers: larger minimum.
    EXPECT_GT(zgc.min_heap_mb, g1.min_heap_mb);
}

TEST(LboSweepTest, ProducesOverheadsAboveOne)
{
    LboSweepOptions options;
    options.factors = {1.5, 3.0, 6.0};
    options.collectors = {gc::Algorithm::Serial, gc::Algorithm::G1,
                          gc::Algorithm::Zgc};
    options.base = quickOptions();
    options.base.invocations = 1;

    const auto &luindex = workloads::byName("luindex");
    const auto result = runLboSweep(luindex, options);
    EXPECT_EQ(result.workload, "luindex");

    for (const auto &collector : result.analysis.collectors()) {
        for (double f : result.analysis.factors(collector)) {
            const auto o = result.analysis.overhead(collector, f);
            EXPECT_GE(o.wall, 1.0) << collector << " @ " << f;
            EXPECT_GE(o.cpu, 1.0) << collector << " @ " << f;
        }
    }

    // Overheads shrink (weakly) as the heap grows: the time-space
    // tradeoff.
    const auto serial_tight = result.analysis.overhead("Serial", 1.5);
    const auto serial_roomy = result.analysis.overhead("Serial", 6.0);
    EXPECT_GE(serial_tight.cpu, serial_roomy.cpu - 1e-6);
}

TEST(LboSweepTest, SuiteAggregationAppliesPlottedRule)
{
    LboSweepOptions options;
    options.factors = {1.0, 3.0};
    options.collectors = {gc::Algorithm::Zgc};
    options.base = quickOptions();
    options.base.invocations = 1;

    std::vector<WorkloadLbo> per_workload;
    for (const char *name : {"biojava", "luindex"}) {
        per_workload.push_back(
            runLboSweep(workloads::byName(name), options));
    }
    const auto points = aggregateSuiteLbo(per_workload, options);
    ASSERT_EQ(points.size(), 2u);
    // At 1.0x, ZGC cannot run everything (footprint): not plotted.
    EXPECT_FALSE(points[0].plotted);
    // At 3.0x both complete: plotted, geomeans over both.
    EXPECT_TRUE(points[1].plotted);
    EXPECT_EQ(points[1].completed, 2u);
    EXPECT_GE(points[1].cpu_geomean, 1.0);
}

TEST(CharacterizeTest, MeasuresCoreMetricsForOneWorkload)
{
    CharacterizeOptions options;
    options.base = quickOptions();
    options.base.invocations = 1;
    options.psd_invocations = 3;
    options.warmup_iterations = 6;
    options.minheap_searches = true;
    options.sensitivity_experiments = true;

    stats::StatTable table;
    const auto &fop = workloads::byName("fop");
    measureWorkloadStats(fop, options, table);

    using stats::MetricId;
    ASSERT_TRUE(table.get("fop", MetricId::PET).has_value());
    EXPECT_GT(*table.get("fop", MetricId::PET), 0.0);

    ASSERT_TRUE(table.get("fop", MetricId::GCC).has_value());
    EXPECT_GT(*table.get("fop", MetricId::GCC), 0.0);

    ASSERT_TRUE(table.get("fop", MetricId::GMD).has_value());
    EXPECT_GT(*table.get("fop", MetricId::GMD), 2.0);

    // Sensitivities approximate the shipped profile (they are driven
    // by it through the machine model).
    ASSERT_TRUE(table.get("fop", MetricId::PMS).has_value());
    EXPECT_NEAR(*table.get("fop", MetricId::PMS), fop.perf.pms, 6.0);
    ASSERT_TRUE(table.get("fop", MetricId::PLS).has_value());
    EXPECT_NEAR(*table.get("fop", MetricId::PLS), fop.perf.pls, 9.0);

    // Counter-backed metrics exist.
    ASSERT_TRUE(table.get("fop", MetricId::UIP).has_value());
    EXPECT_GT(*table.get("fop", MetricId::UIP), 50.0);

    // Shipped-only metrics were carried over.
    ASSERT_TRUE(table.get("fop", MetricId::AOA).has_value());
    EXPECT_DOUBLE_EQ(*table.get("fop", MetricId::AOA), 58.0);
}

} // namespace
} // namespace capo::harness
