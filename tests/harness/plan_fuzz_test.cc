/**
 * @file
 * Fuzz tests for the experiment-definition parser: for arbitrary
 * (seeded) mutations of valid plans — and for outright garbage — the
 * parser must either return a plan or throw ParseError. Anything else
 * (a crash, an uncaught std::invalid_argument from a raw stoi, a
 * fatal() exit) is a bug; several of those were fixed by the guarded
 * conversions this suite pins down.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/plan_file.hh"
#include "support/rng.hh"

namespace capo::harness {
namespace {

/** The contract under test: parse, or throw ParseError. */
void
mustParseOrThrowParseError(const std::string &text)
{
    try {
        const auto plan = parsePlan(text);
        // Structural sanity on success: resolved lists are non-empty.
        EXPECT_FALSE(plan.workloads.empty());
        EXPECT_FALSE(plan.collectors.empty());
        EXPECT_FALSE(plan.heap_factors.empty());
    } catch (const ParseError &) {
        // The one sanctioned failure mode.
    }
    // Any other exception propagates and fails the test.
}

const char *const kValidPlan =
    "# exercise every key\n"
    "experiment   = lbo\n"
    "workloads    = lusearch, h2\n"
    "collectors   = serial, g1, zgc\n"
    "heap_factors = 1.5, 2, 3, 6\n"
    "iterations   = 3\n"
    "invocations  = 2\n"
    "jobs         = 2\n"
    "size         = small\n"
    "seed         = 1234\n"
    "trace_out    = out.json\n"
    "trace_categories = gc, harness\n"
    "metrics_interval = 5\n"
    "faults       = alloc=0.01,gc=0.005\n"
    "fault_seed   = 7\n"
    "retries      = 2\n"
    "checkpoint   = run.ckpt\n";

TEST(PlanFuzzTest, TruncationsNeverCrash)
{
    const std::string base = kValidPlan;
    for (std::size_t cut = 0; cut <= base.size(); ++cut)
        mustParseOrThrowParseError(base.substr(0, cut));
}

class PlanFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PlanFuzz, RandomByteMutationsNeverCrash)
{
    support::Rng rng(GetParam());
    const std::string base = kValidPlan;
    for (int round = 0; round < 400; ++round) {
        std::string text = base;
        const int edits = 1 + static_cast<int>(rng.uniformInt(8));
        for (int e = 0; e < edits; ++e) {
            const auto pos =
                static_cast<std::size_t>(rng.uniformInt(text.size()));
            switch (rng.uniformInt(3)) {
              case 0:  // flip a byte to random printable-ish junk
                text[pos] = static_cast<char>(rng.uniformInt(256));
                break;
              case 1:  // delete a byte
                text.erase(pos, 1);
                break;
              default:  // insert a hostile character
                text.insert(pos, 1, "=#,\n\t -.e9x"[rng.uniformInt(11)]);
                break;
            }
            if (text.empty())
                break;
        }
        mustParseOrThrowParseError(text);
    }
}

TEST_P(PlanFuzz, RandomKeyValueSplicesNeverCrash)
{
    support::Rng rng(GetParam());
    const std::vector<std::string> keys = {
        "experiment", "workloads",   "collectors",
        "heap_factors", "iterations", "invocations",
        "jobs",       "size",        "seed",
        "trace_out",  "trace_categories", "metrics_interval",
        "faults",     "fault_seed",  "retries",
        "checkpoint", "bogus",       "",
    };
    const std::vector<std::string> values = {
        "",      "0",        "1",     "-1",     "1e308",  "-1e308",
        "nan",   "inf",      "0.5",   "lbo",    "minheap", "all",
        "none",  "x",        "5x",    "1,2,3",  ",",       ",,,",
        "99999999999999999999", "-99999999999999999999",
        "alloc=0.5", "alloc=2", "alloc=", "=0.5", "g1", "serial, bogus",
        "\t",    " ",        "0x10",  "1.5.2",  "--",     "lusearch",
    };
    for (int round = 0; round < 400; ++round) {
        std::string text;
        const int lines = 1 + static_cast<int>(rng.uniformInt(12));
        for (int l = 0; l < lines; ++l) {
            // Duplicate keys are deliberately likely: last-wins must
            // hold, never a crash.
            text += keys[rng.uniformInt(keys.size())];
            if (rng.uniformInt(8) != 0)
                text += " = ";
            text += values[rng.uniformInt(values.size())];
            if (rng.uniformInt(8) != 0)
                text += "\n";
        }
        mustParseOrThrowParseError(text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzz,
                         ::testing::Values(1, 7, 42, 1337, 90210));

} // namespace
} // namespace capo::harness
