/**
 * @file
 * A deliberately small JSON parser shared by test suites — just enough
 * for the trace exporter's own output, so tests validate real syntax
 * rather than substrings. Strict: rejects trailing garbage, unknown
 * escapes and malformed numbers.
 */

#ifndef CAPO_TESTS_TESTUTIL_JSON_HH
#define CAPO_TESTS_TESTUTIL_JSON_HH

#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace capo::testutil {

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &
    at(const std::string &key) const
    {
        static const JsonValue null;
        const auto it = fields.find(key);
        return it == fields.end() ? null : it->second;
    }
};

class JsonParser
{
  public:
    /** Copies @p text: callers may pass temporaries (e.g. out.str()). */
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        return pos_ == text_.size();  // no trailing garbage
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.text);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_;  // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.fields.emplace(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_;  // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.items.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    out += esc;
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return false;
                    const auto code = std::stoi(
                        text_.substr(pos_, 4), nullptr, 16);
                    pos_ += 4;
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    return false;
                }
                continue;
            }
            out += c;
        }
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return false;
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        out.type = JsonValue::Type::Number;
        return true;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

} // namespace capo::testutil

#endif // CAPO_TESTS_TESTUTIL_JSON_HH
