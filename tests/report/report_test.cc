/**
 * @file
 * Tests for the capo::report layer: the exact result codec, typed
 * result tables and their writers, the ArtifactSink choke point
 * (retry, quarantine, Memory mode, fault injection) and the
 * experiment registry plumbing.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "report/artifact.hh"
#include "report/codec.hh"
#include "report/experiment.hh"
#include "report/table.hh"

namespace capo::report {
namespace {

// ---------------------------------------------------------------------
// Codec: exact doubles and record framing.

TEST(CodecTest, DoublesRoundTripBitExactly)
{
    for (double v :
         {0.0, -0.0, 1.0, -1.5, 1.0 / 3.0, 3.141592653589793,
          1.23456789e300, 4.9e-324, -2.2250738585072014e-308,
          1e9 + 1.0 / 3.0}) {
        const auto text = encodeDouble(v);
        EXPECT_EQ(text.size(), 16u);
        double back = 0.0;
        ASSERT_TRUE(decodeDouble(text, back)) << text;
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
            << "bit pattern lost for " << v;
    }
}

TEST(CodecTest, DecodeDoubleRejectsMalformedText)
{
    double out = 0.0;
    EXPECT_FALSE(decodeDouble("", out));
    EXPECT_FALSE(decodeDouble("123", out));
    EXPECT_FALSE(decodeDouble("zz00000000000000", out));
    EXPECT_FALSE(decodeDouble("00000000000000000", out));
}

TEST(CodecTest, RecordFramingRoundTrips)
{
    const std::vector<std::string> fields = {"lbo/fop/G1", "1", "",
                                             encodeDouble(2.5)};
    const auto line = encodeRecord(fields);
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(decodeRecord(line.substr(0, line.size() - 1)), fields);

    EXPECT_TRUE(fieldIsClean("plain text with spaces"));
    EXPECT_FALSE(fieldIsClean("has\ttab"));
    EXPECT_FALSE(fieldIsClean("has\nnewline"));
}

// ---------------------------------------------------------------------
// Values and tables.

TEST(TableTest, ValuesEncodeDecodeExactly)
{
    const struct
    {
        Value value;
        Type type;
    } cases[] = {
        {Value::str("hello"), Type::String},
        {Value::dbl(1.0 / 3.0), Type::Double},
        {Value::integer(-42), Type::Int},
        {Value::uinteger(0xffffffffffffffffULL), Type::Uint},
        {Value::boolean(true), Type::Bool},
    };
    for (const auto &c : cases) {
        Value back;
        ASSERT_TRUE(Value::decode(c.type, c.value.encode(), back));
        EXPECT_TRUE(c.value.identical(back))
            << typeName(c.type) << " did not round-trip";
    }

    // Doubles compare by bit pattern: +0.0 and -0.0 are different
    // values even though they compare == as doubles.
    EXPECT_FALSE(Value::dbl(0.0).identical(Value::dbl(-0.0)));
}

Schema
smallSchema()
{
    return Schema{{"workload", Type::String},
                  {"factor", Type::Double},
                  {"completed", Type::Bool},
                  {"count", Type::Uint}};
}

ResultTable
smallTable()
{
    ResultTable table(smallSchema());
    table.addRow({Value::str("fop"), Value::dbl(2.0),
                  Value::boolean(true), Value::uinteger(3)});
    table.addRow({Value::str("h2"), Value::dbl(1.0 / 3.0),
                  Value::boolean(false), Value::uinteger(0)});
    return table;
}

TEST(TableTest, CsvWriterIsStable)
{
    std::stringstream out;
    EXPECT_EQ(smallTable().writeCsv(out), 2u);
    const std::string csv = out.str();
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "workload,factor,completed,count");
    EXPECT_NE(csv.find("fop,2,1,3"), std::string::npos) << csv;

    // %.17g doubles re-parse exactly.
    const auto line2_at = csv.find("h2,");
    ASSERT_NE(line2_at, std::string::npos);
    const auto comma = csv.find(',', line2_at + 3);
    const double reparsed =
        std::strtod(csv.substr(line2_at + 3, comma).c_str(), nullptr);
    const double original = 1.0 / 3.0;
    EXPECT_EQ(std::memcmp(&reparsed, &original, sizeof original), 0);
}

TEST(TableTest, RowsRoundTripThroughRecords)
{
    const auto table = smallTable();
    ResultTable rebuilt(table.schema());
    for (std::size_t i = 0; i < table.rowCount(); ++i)
        ASSERT_TRUE(rebuilt.addDecodedRow(table.encodeRow(i)));
    EXPECT_TRUE(rebuilt.identical(table));

    // Wrong arity and undecodable fields are rejected, not adopted.
    EXPECT_FALSE(rebuilt.addDecodedRow({"fop", "only-two"}));
    EXPECT_FALSE(rebuilt.addDecodedRow(
        {"fop", "not-a-bit-pattern", "1", "3"}));
    EXPECT_EQ(rebuilt.rowCount(), table.rowCount());
}

TEST(TableTest, StoreGetOrCreateKeepsInsertionOrder)
{
    ResultStore store;
    auto &first = store.table("beta", smallSchema());
    store.table("alpha", smallSchema());
    auto &again = store.table("beta", smallSchema());
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(store.names(),
              (std::vector<std::string>{"beta", "alpha"}));
    EXPECT_NE(store.find("alpha"), nullptr);
    EXPECT_EQ(store.find("gamma"), nullptr);
}

// ---------------------------------------------------------------------
// ArtifactSink: the artifact I/O choke point.

TEST(ArtifactSinkTest, MemoryModeCapturesPayloads)
{
    ArtifactSink sink(".", ArtifactSink::Mode::Memory);
    EXPECT_TRUE(sink.write("a/b.csv", [](std::ostream &out) {
        out << "x,y\n1,2\n";
    }));
    EXPECT_EQ(sink.payload("a/b.csv"), "x,y\n1,2\n");
    EXPECT_EQ(sink.payload("absent.csv"), "");
    ASSERT_EQ(sink.artifacts().size(), 1u);
    EXPECT_TRUE(sink.artifacts()[0].ok);
    EXPECT_EQ(sink.artifacts()[0].bytes, 8u);
    EXPECT_EQ(sink.artifacts()[0].attempts, 1);
}

TEST(ArtifactSinkTest, DiskModeCreatesParentDirectories)
{
    const std::string root =
        ::testing::TempDir() + "capo_report_sink_test";
    ArtifactSink sink(root);
    ASSERT_TRUE(sink.writeTable("nested/dir/table.csv", smallTable(),
                                Format::Csv));
    std::ifstream in(root + "/nested/dir/table.csv");
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "workload,factor,completed,count");
}

TEST(ArtifactSinkTest, CertainFaultsQuarantineAfterRetries)
{
    fault::FaultPlan plan;
    plan.setRate(fault::Site::ArtifactIo, 1.0);

    ArtifactSink sink(".", ArtifactSink::Mode::Memory);
    sink.armFaults(plan, 1234);
    sink.setRetries(2);
    EXPECT_FALSE(sink.write("doomed.csv", [](std::ostream &out) {
        out << "payload";
    }));
    // Quarantine is recorded, never thrown: the payload simply did
    // not land.
    ASSERT_EQ(sink.quarantined().size(), 1u);
    EXPECT_EQ(sink.quarantined()[0].attempts, 3);  // 1 + 2 retries
    EXPECT_FALSE(sink.quarantined()[0].error.empty());
    EXPECT_EQ(sink.payload("doomed.csv"), "");
}

TEST(ArtifactSinkTest, FaultScheduleIsDeterministic)
{
    fault::FaultPlan plan;
    plan.setRate(fault::Site::ArtifactIo, 0.5);

    const auto run = [&plan](std::uint64_t seed) {
        ArtifactSink sink(".", ArtifactSink::Mode::Memory);
        sink.armFaults(plan, seed);
        sink.setRetries(1);
        std::vector<int> attempts;
        for (int i = 0; i < 16; ++i) {
            sink.write("artifact_" + std::to_string(i) + ".csv",
                       [](std::ostream &out) { out << "row\n"; });
            attempts.push_back(sink.artifacts().back().attempts);
        }
        return attempts;
    };

    // Same seed, same schedule — bit for bit; a different seed gives
    // a different schedule (with overwhelming probability at 32
    // opportunities).
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

TEST(ArtifactSinkTest, ZeroRatePlanDisarms)
{
    fault::FaultPlan plan;
    plan.setRate(fault::Site::AllocOom, 1.0);  // other sites only

    ArtifactSink sink(".", ArtifactSink::Mode::Memory);
    sink.armFaults(plan, 7);
    EXPECT_TRUE(sink.write("fine.csv",
                           [](std::ostream &out) { out << "ok"; }));
    EXPECT_EQ(sink.artifacts().back().attempts, 1);
}

// ---------------------------------------------------------------------
// Experiment registry plumbing (experiments themselves are exercised
// by the golden tests, which link the registrations).

TEST(ExperimentRegistryTest, RunRegisteredParsesFlagsAndFillsStore)
{
    Experiment experiment;
    experiment.name = "registry_test_experiment";
    experiment.title = "Registry plumbing test";
    experiment.paper_ref = "none";
    experiment.description = "test-only experiment";
    experiment.quick_invocations = 2;
    experiment.quick_iterations = 4;
    experiment.add_flags = [](support::Flags &flags) {
        flags.addString("label", "default", "test flag");
    };
    experiment.run = [](ExperimentContext &context) {
        EXPECT_EQ(context.options.invocations, 2);
        EXPECT_EQ(context.options.iterations, 4);
        auto &table = context.store.table(
            "labels", Schema{{"label", Type::String}});
        table.addRow(
            {Value::str(context.flags.getString("label"))});
        context.artifacts.write("extra.txt", [](std::ostream &out) {
            out << "side artifact";
        });
        return 0;
    };

    ArtifactSink sink(".", ArtifactSink::Mode::Memory);
    ResultStore store;
    EXPECT_EQ(runRegistered(experiment, {"--label", "from-args"}, sink,
                            store),
              0);
    const ResultTable *table = store.find("labels");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->rowCount(), 1u);
    EXPECT_EQ(table->rows()[0][0].asString(), "from-args");
    EXPECT_EQ(sink.payload("extra.txt"), "side artifact");
}

TEST(ExperimentRegistryTest, RegistrarAddsAndListsSorted)
{
    // Register deliberately out of order: the `capo-bench list`
    // output must be name-sorted no matter what order the static
    // registrars ran in (link order is not a contract).
    for (const char *name : {"zz_registry_order_test",
                             "aa_registry_order_test",
                             "mm_registry_order_test"}) {
        Experiment e;
        e.name = name;
        e.run = [](ExperimentContext &) { return 0; };
        RegisterExperiment add{std::move(e)};
    }

    auto &registry = ExperimentRegistry::instance();
    EXPECT_NE(registry.find("zz_registry_order_test"), nullptr);
    EXPECT_NE(registry.find("aa_registry_order_test"), nullptr);
    EXPECT_EQ(registry.find("no_such_experiment"), nullptr);

    const auto all = registry.all();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);

    // The three out-of-order registrations appear, sorted, in one
    // pass over the listing.
    std::vector<std::string> ours;
    for (const auto *experiment : all) {
        if (experiment->name.find("_registry_order_test") !=
            std::string::npos)
            ours.push_back(experiment->name);
    }
    EXPECT_EQ(ours, (std::vector<std::string>{
                        "aa_registry_order_test",
                        "mm_registry_order_test",
                        "zz_registry_order_test"}));
}

} // namespace
} // namespace capo::report
