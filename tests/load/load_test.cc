/**
 * @file
 * Open-loop load subsystem tests: arrival-generator statistics and
 * determinism, the pacing-policy contracts, and the acceptance
 * properties of the open-loop sweep (bit-identical across --jobs,
 * arrival-stamped tails dominating service-stamped ones, and the
 * adaptive pacer winning at least one load regime).
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gc/pacing.hh"
#include "harness/openloop_experiment.hh"
#include "load/arrival.hh"
#include "load/pacer.hh"
#include "support/rng.hh"
#include "workloads/registry.hh"

namespace capo {
namespace {

load::ArrivalSpec
poissonSpec(double rate)
{
    load::ArrivalSpec spec;
    spec.kind = load::ArrivalKind::Poisson;
    spec.rate_per_sec = rate;
    return spec;
}

TEST(ArrivalTest, KindNamesRoundTrip)
{
    for (auto kind :
         {load::ArrivalKind::Poisson, load::ArrivalKind::OnOff,
          load::ArrivalKind::Diurnal}) {
        load::ArrivalKind parsed = load::ArrivalKind::Poisson;
        EXPECT_TRUE(load::tryArrivalKindFromName(
            load::arrivalKindName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    load::ArrivalKind parsed;
    EXPECT_FALSE(load::tryArrivalKindFromName("sawtooth", &parsed));
    EXPECT_FALSE(load::tryArrivalKindFromName("", &parsed));
}

TEST(ArrivalTest, PoissonMeanRateWithinConfidenceInterval)
{
    const double rate = 1000.0;
    load::ArrivalGenerator gen(poissonSpec(rate), support::Rng(42));
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double gap = gen.next();
        ASSERT_GT(gap, 0.0);
        sum += gap;
    }
    // Exponential gaps: sd == mean, so the sample mean lies within
    // mean * 5/sqrt(n) of 1/rate essentially always.
    const double mean = sum / n;
    const double expected = 1e9 / rate;
    EXPECT_NEAR(mean, expected, expected * 5.0 / std::sqrt(1.0 * n));
}

TEST(ArrivalTest, OnOffPreservesMeanRateAndBurstOccupancy)
{
    load::ArrivalSpec spec;
    spec.kind = load::ArrivalKind::OnOff;
    spec.rate_per_sec = 1000.0;
    spec.burst_ratio = 4.0;
    spec.burst_duty = 0.3;
    spec.burst_mean_ns = 50e6;
    load::ArrivalGenerator gen(spec, support::Rng(7));

    const int n = 200000;
    double elapsed = 0.0;
    int in_burst = 0;
    for (int i = 0; i < n; ++i) {
        elapsed += gen.next();
        if (gen.inBurst())
            ++in_burst;
    }
    // Long-run mean rate must equal rate_per_sec (the burst knobs
    // redistribute mass, they don't add any).
    EXPECT_NEAR(n / (elapsed / 1e9), spec.rate_per_sec,
                spec.rate_per_sec * 0.05);
    // Per-arrival burst share: duty*ratio / (duty*ratio + 1 - duty),
    // the fraction of arrival mass carried by the on state.
    const double mass_share =
        spec.burst_duty * spec.burst_ratio /
        (spec.burst_duty * spec.burst_ratio + 1.0 - spec.burst_duty);
    EXPECT_NEAR(static_cast<double>(in_burst) / n, mass_share, 0.08);
}

TEST(ArrivalTest, DiurnalPeakBeatsTroughAndKeepsMeanRate)
{
    load::ArrivalSpec spec;
    spec.kind = load::ArrivalKind::Diurnal;
    spec.rate_per_sec = 2000.0;
    spec.diurnal_period_ns = 1e9;
    spec.diurnal_depth = 0.8;
    load::ArrivalGenerator gen(spec, support::Rng(11));

    const int n = 100000;
    double clock = 0.0;
    int quarter_counts[4] = {0, 0, 0, 0};
    for (int i = 0; i < n; ++i) {
        clock += gen.next();
        const double phase =
            std::fmod(clock, spec.diurnal_period_ns) /
            spec.diurnal_period_ns;
        ++quarter_counts[static_cast<int>(phase * 4.0) & 3];
    }
    // sin peaks in the first half-period's middle quarter and bottoms
    // out in the second half's.
    EXPECT_GT(quarter_counts[1], quarter_counts[3] * 2);
    EXPECT_NEAR(n / (clock / 1e9), spec.rate_per_sec,
                spec.rate_per_sec * 0.05);
}

TEST(ArrivalTest, EqualSeedsGiveIdenticalStreams)
{
    for (auto kind :
         {load::ArrivalKind::Poisson, load::ArrivalKind::OnOff,
          load::ArrivalKind::Diurnal}) {
        load::ArrivalSpec spec;
        spec.kind = kind;
        load::ArrivalGenerator a(spec, support::Rng(123));
        load::ArrivalGenerator b(spec, support::Rng(123));
        load::ArrivalGenerator c(spec, support::Rng(124));
        bool differs = false;
        for (int i = 0; i < 1000; ++i) {
            const double ga = a.next();
            EXPECT_EQ(ga, b.next()); // bitwise
            differs = differs || ga != c.next();
        }
        EXPECT_TRUE(differs);
    }
}

TEST(PacingPolicyTest, StaticPolicyClampsFreeFractionRatio)
{
    const auto &policy = gc::StaticPacingPolicy::instance();
    runtime::PacingSignal signal;
    signal.pacing_supported = true;
    signal.cycle_active = true;
    signal.pace_free_threshold = 0.30;
    signal.pace_floor = 0.05;

    signal.free_fraction = 0.15;
    EXPECT_DOUBLE_EQ(policy.mutatorSpeed(signal), 0.5);
    signal.free_fraction = 0.60;
    EXPECT_DOUBLE_EQ(policy.mutatorSpeed(signal), 1.0);
    signal.free_fraction = 0.0;
    EXPECT_DOUBLE_EQ(policy.mutatorSpeed(signal), 0.05);

    // Outside an active cycle — or on a non-pacing collector — the
    // policy must get out of the way entirely.
    signal.cycle_active = false;
    signal.free_fraction = 0.0;
    EXPECT_DOUBLE_EQ(policy.mutatorSpeed(signal), 1.0);
    signal.cycle_active = true;
    signal.pacing_supported = false;
    EXPECT_DOUBLE_EQ(policy.mutatorSpeed(signal), 1.0);
}

TEST(PacingPolicyTest, UtilityRewardsGoodputAndPenalizesLateness)
{
    load::PacerConfig config;
    // Below the latency target: more goodput is strictly better and
    // latency has no effect.
    EXPECT_GT(load::pacingUtility(2000.0, 1e6, config),
              load::pacingUtility(1000.0, 1e6, config));
    EXPECT_EQ(load::pacingUtility(1000.0, 1e6, config),
              load::pacingUtility(1000.0, 19e6, config));
    // Past the target the penalty bites, and harder the later it is.
    EXPECT_GT(load::pacingUtility(1000.0, 19e6, config),
              load::pacingUtility(1000.0, 40e6, config));
    EXPECT_GT(load::pacingUtility(1000.0, 40e6, config),
              load::pacingUtility(1000.0, 80e6, config));
}

harness::OpenLoopSweepOptions
sweepOptions(int jobs)
{
    harness::OpenLoopSweepOptions sweep;
    sweep.load_factors = {0.5, 1.2};
    sweep.modes = {"static", "adaptive"};
    sweep.base.iterations = 2;
    sweep.base.invocations = 1;
    sweep.base.time_limit_sec = 300;
    sweep.base.jobs = jobs;
    return sweep;
}

void
expectCellsIdentical(const harness::OpenLoopCell &a,
                     const harness::OpenLoopCell &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.collector, b.collector);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.load_factor, b.load_factor);
    EXPECT_EQ(a.ok, b.ok);
    // All bitwise, not approximate.
    EXPECT_EQ(a.arrival_p50_ns, b.arrival_p50_ns);
    EXPECT_EQ(a.arrival_p99_ns, b.arrival_p99_ns);
    EXPECT_EQ(a.arrival_p999_ns, b.arrival_p999_ns);
    EXPECT_EQ(a.service_p50_ns, b.service_p50_ns);
    EXPECT_EQ(a.service_p99_ns, b.service_p99_ns);
    EXPECT_EQ(a.service_p999_ns, b.service_p999_ns);
    EXPECT_EQ(a.goodput_rps, b.goodput_rps);
    EXPECT_EQ(a.utility, b.utility);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.mean_pace, b.mean_pace);
    // The digest captures every monitoring-interval decision the
    // adaptive pacer took, bit for bit.
    EXPECT_EQ(a.pacer_digest, b.pacer_digest);
}

TEST(OpenLoopSweepTest, BitIdenticalAcrossJobsAndAcceptanceGaps)
{
    const auto serial =
        harness::runOpenLoopSweep({"lusearch"}, sweepOptions(1));
    const auto parallel =
        harness::runOpenLoopSweep({"lusearch"}, sweepOptions(8));

    ASSERT_EQ(serial.cells.size(), 4u);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    EXPECT_EQ(serial.dispatches, parallel.dispatches);
    for (std::size_t i = 0; i < serial.cells.size(); ++i)
        expectCellsIdentical(serial.cells[i], parallel.cells[i]);

    double static_util_sat = 0.0;
    double adaptive_util_sat = 0.0;
    bool adaptive_wins_somewhere = false;
    for (const auto &cell : serial.cells) {
        ASSERT_TRUE(cell.ok) << cell.mode << " @ " << cell.load_factor;
        // Coordinated omission: latency measured from arrival can
        // never be shorter than latency measured from service start.
        EXPECT_GE(cell.arrival_p99_ns, cell.service_p99_ns);
        if (cell.mode == "adaptive") {
            EXPECT_FALSE(cell.pacer_digest.empty());
            EXPECT_GT(cell.mean_pace, 0.0);
            EXPECT_LE(cell.mean_pace, 1.0);
        } else {
            EXPECT_TRUE(cell.pacer_digest.empty());
        }
        if (cell.load_factor == 1.2) {
            if (cell.mode == "static")
                static_util_sat = cell.utility;
            if (cell.mode == "adaptive")
                adaptive_util_sat = cell.utility;
        }
    }
    for (double factor : {0.5, 1.2}) {
        double s = 0.0, a = 0.0;
        for (const auto &cell : serial.cells) {
            if (cell.load_factor != factor)
                continue;
            (cell.mode == "static" ? s : a) = cell.utility;
        }
        adaptive_wins_somewhere = adaptive_wins_somewhere || a > s;
    }
    // Under saturating load the arrival-stamped tail must show real
    // queueing on top of the service-stamped view.
    for (const auto &cell : serial.cells) {
        if (cell.load_factor == 1.2) {
            EXPECT_GT(cell.arrival_p99_ns, cell.service_p99_ns);
        }
    }
    // The feedback pacer has to earn its keep in at least one regime.
    EXPECT_TRUE(adaptive_wins_somewhere)
        << "static=" << static_util_sat
        << " adaptive=" << adaptive_util_sat;
}

} // namespace
} // namespace capo
