/**
 * @file
 * Behavioural tests for the five collector models (plus GenZGC).
 *
 * These check the *mechanisms* each design is defined by: STW pauses
 * and their telemetry, concurrent cycles, pacing/stalling under
 * allocation pressure, out-of-memory detection, compressed-pointer
 * footprint, and the qualitative cost relationships the paper's
 * analysis rests on.
 */

#include <gtest/gtest.h>

#include "gc/factory.hh"
#include "runtime/execution.hh"

namespace capo::gc {
namespace {

runtime::ExecutionConfig
config(double heap_mb, double survivor = 0.03)
{
    runtime::ExecutionConfig c;
    c.cpus = 32.0;
    c.heap_bytes = heap_mb * 1024.0 * 1024.0;
    c.survivor_fraction = survivor;
    c.survivor_reference_bytes = heap_mb * 1024.0 * 1024.0 * 0.5;
    c.seed = 11;
    c.time_limit_sec = 400;
    return c;
}

runtime::MutatorPlan
plan(double seconds = 1.0, double alloc_gb = 2.0, double width = 8.0)
{
    runtime::MutatorPlan p;
    p.iterations = 2;
    p.width = width;
    p.work_per_iteration = seconds * 1e9 * width;
    p.alloc_per_iteration = alloc_gb * 1e9;
    return p;
}

heap::LiveSetModel
live(double mb)
{
    heap::LiveSetModel m;
    m.base_bytes = mb * 1024.0 * 1024.0;
    m.buildup_fraction = 0.05;
    return m;
}

runtime::ExecutionResult
run(Algorithm algorithm, const runtime::ExecutionConfig &cfg,
    const runtime::MutatorPlan &p, const heap::LiveSetModel &l,
    double footprint = 1.3)
{
    auto collector = makeCollector(algorithm, footprint);
    return runtime::runExecution(cfg, p, l, *collector);
}

class AllCollectors : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(AllCollectors, CompletesWithGenerousHeap)
{
    const auto result = run(GetParam(), config(256.0), plan(), live(20.0));
    EXPECT_TRUE(result.completed) << algorithmName(GetParam());
    EXPECT_FALSE(result.oom);
    EXPECT_GT(result.collections, 0u);
    EXPECT_GT(result.gc_cpu, 0.0);
}

TEST_P(AllCollectors, PauseTelemetryIsConsistent)
{
    const auto result = run(GetParam(), config(128.0), plan(), live(20.0));
    ASSERT_TRUE(result.completed);
    const auto &log = result.log;
    EXPECT_GT(log.pauseCount(), 0u);
    // Pause CPU is bounded by pause wall x machine width.
    EXPECT_LE(log.stwCpu(), log.stwWall() * 32.0 * (1.0 + 1e-9));
    // STW wall is bounded by total wall.
    EXPECT_LE(log.stwWall(), result.wall);
    // Every recorded cycle reclaimed something or retained survivors.
    for (const auto &c : log.cycles())
        EXPECT_GE(c.reclaimed + c.post_gc_bytes, 0.0);
}

TEST_P(AllCollectors, ReportsOomWellBelowLiveSet)
{
    // 20 MB of live data cannot fit an 16 MB heap under any design.
    const auto result = run(GetParam(), config(16.0), plan(), live(20.0));
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.oom) << algorithmName(GetParam());
}

TEST_P(AllCollectors, SmallerHeapsCollectMoreOften)
{
    const auto tight = run(GetParam(), config(64.0), plan(), live(20.0));
    const auto roomy = run(GetParam(), config(512.0), plan(), live(20.0));
    ASSERT_TRUE(tight.completed);
    ASSERT_TRUE(roomy.completed);
    EXPECT_GT(tight.collections, roomy.collections);
    EXPECT_GE(tight.gc_cpu, roomy.gc_cpu * 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllCollectors,
    ::testing::ValuesIn(allCollectors()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        std::string name = algorithmName(info.param);
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(SerialTest, PausesAreSingleThreaded)
{
    const auto result =
        run(Algorithm::Serial, config(96.0), plan(), live(20.0));
    ASSERT_TRUE(result.completed);
    // Width-1 pauses: pause CPU ~= pause wall (minus the TTSP slice,
    // during which the collector burns no CPU).
    EXPECT_LE(result.log.stwCpu(),
              result.log.stwWall() * (1.0 + 1e-9));
    EXPECT_GT(result.log.stwCpu(), result.log.stwWall() * 0.5);
}

TEST(ParallelTest, ShorterPausesThanSerialSameCpuOrder)
{
    const auto serial =
        run(Algorithm::Serial, config(96.0), plan(), live(20.0));
    const auto parallel =
        run(Algorithm::Parallel, config(96.0), plan(), live(20.0));
    ASSERT_TRUE(serial.completed && parallel.completed);
    // Parallelism shortens the total pause wall time.
    EXPECT_LT(parallel.log.stwWall(), serial.log.stwWall());
    // ...but not the CPU burned per unit of collection work; Parallel
    // spends at least as much GC CPU as Serial.
    EXPECT_GE(parallel.gc_cpu, serial.gc_cpu * 0.9);
}

TEST(G1Test, RunsConcurrentMarkingAndMixedPauses)
{
    // High occupancy (live close to IHOP) forces marking cycles.
    const auto result =
        run(Algorithm::G1, config(64.0), plan(1.0, 4.0), live(30.0));
    ASSERT_TRUE(result.completed);
    bool saw_concurrent = false;
    bool saw_mixed = false;
    for (const auto &p : result.log.phases()) {
        saw_concurrent |= p.phase == runtime::GcPhase::Concurrent;
        saw_mixed |= p.phase == runtime::GcPhase::MixedPause;
    }
    EXPECT_TRUE(saw_concurrent);
    EXPECT_TRUE(saw_mixed);
}

TEST(ConcurrentTest, CyclesBracketedByShortPauses)
{
    const auto result =
        run(Algorithm::Zgc, config(128.0), plan(), live(30.0));
    ASSERT_TRUE(result.completed);
    std::size_t init = 0, final = 0, conc = 0;
    for (const auto &p : result.log.phases()) {
        init += p.phase == runtime::GcPhase::InitPause;
        final += p.phase == runtime::GcPhase::FinalPause;
        conc += p.phase == runtime::GcPhase::Concurrent;
    }
    EXPECT_GT(conc, 0u);
    EXPECT_EQ(init, conc);
    EXPECT_EQ(init, final);
    // Concurrent designs keep pauses far below STW designs.
    const auto parallel =
        run(Algorithm::Parallel, config(128.0), plan(), live(30.0));
    EXPECT_LT(result.log.maxPause(), parallel.log.maxPause());
}

TEST(ConcurrentTest, ZgcStallsWhenAllocationOutrunsReclamation)
{
    // Small heap + fast allocation: cycles cannot keep up.
    const auto result =
        run(Algorithm::Zgc, config(48.0), plan(0.5, 8.0), live(20.0));
    ASSERT_TRUE(result.completed);
    EXPECT_GT(result.stall_count, 0u);
    EXPECT_GT(result.log.stallWall(), 0.0);
}

TEST(ConcurrentTest, ShenandoahPacesInsteadOfPausing)
{
    const auto shen = run(Algorithm::Shenandoah, config(48.0),
                          plan(0.5, 8.0), live(20.0));
    ASSERT_TRUE(shen.completed);
    // Pacing throttles mutators: wall stretches well beyond the
    // no-pressure configuration.
    const auto roomy = run(Algorithm::Shenandoah, config(512.0),
                           plan(0.5, 8.0), live(20.0));
    ASSERT_TRUE(roomy.completed);
    EXPECT_GT(shen.wall, roomy.wall * 1.2);
}

TEST(ZgcTest, FootprintRaisesMinimumHeap)
{
    // With footprint 1.6, a 34 MB heap holds only 21 MB logical: the
    // 20 MB live set plus reserve no longer fits where Serial would.
    const auto zgc =
        run(Algorithm::Zgc, config(34.0), plan(), live(20.0), 1.6);
    const auto serial =
        run(Algorithm::Serial, config(34.0), plan(), live(20.0), 1.6);
    EXPECT_TRUE(serial.completed);
    EXPECT_FALSE(zgc.completed);
}

TEST(ZgcTest, FootprintDoesNotApplyToCompressedCollectors)
{
    auto serial = makeCollector(Algorithm::Serial, 1.6);
    auto g1 = makeCollector(Algorithm::G1, 1.6);
    auto zgc = makeCollector(Algorithm::Zgc, 1.6);
    EXPECT_DOUBLE_EQ(serial->footprintFactor(), 1.0);
    EXPECT_DOUBLE_EQ(g1->footprintFactor(), 1.0);
    EXPECT_DOUBLE_EQ(zgc->footprintFactor(), 1.6);
}

TEST(GenZgcTest, YoungCyclesCheapenCollectionForBigLiveSets)
{
    // Large live set, moderate allocation: generational cycles avoid
    // re-tracing the whole live set every time.
    const auto zgc = run(Algorithm::Zgc, config(512.0),
                         plan(1.0, 3.0), live(160.0), 1.0);
    const auto gen = run(Algorithm::GenZgc, config(512.0),
                         plan(1.0, 3.0), live(160.0), 1.0);
    ASSERT_TRUE(zgc.completed && gen.completed);
    EXPECT_LT(gen.gc_cpu, zgc.gc_cpu);
}

TEST(FactoryTest, NamesRoundTrip)
{
    for (auto algorithm : allCollectors()) {
        EXPECT_EQ(algorithmFromName(algorithmName(algorithm)),
                  algorithm);
    }
    EXPECT_EQ(algorithmFromName("shenandoah"), Algorithm::Shenandoah);
    EXPECT_EQ(algorithmFromName("ZGC*"), Algorithm::Zgc);
}

TEST(FactoryTest, ProductionSetMatchesPaperLegend)
{
    const auto production = productionCollectors();
    ASSERT_EQ(production.size(), 5u);
    auto serial = makeCollector(production[0]);
    auto zgc = makeCollector(production[4]);
    EXPECT_EQ(serial->introducedYear(), 1998);
    EXPECT_EQ(zgc->introducedYear(), 2018);
}

TEST(TuningTest, BarrierTaxOrderingMatchesDesigns)
{
    // Concurrent designs carry the heaviest barriers; STW the least.
    EXPECT_LT(serialTuning().barrier_factor,
              g1Tuning().barrier_factor);
    EXPECT_LT(g1Tuning().barrier_factor,
              zgcTuning().barrier_factor);
    EXPECT_LT(zgcTuning().barrier_factor,
              shenandoahTuning().barrier_factor);
}

} // namespace
} // namespace capo::gc
