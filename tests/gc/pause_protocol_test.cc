/**
 * @file
 * Pause-protocol equivalence tests.
 *
 * The PauseProtocol refactor (DESIGN.md §14) rebuilt the collector
 * pause machinery — batched freeze/unfreeze, the fused TTSP-sleep +
 * pause-compute action, and the shared safepoint sequence — under the
 * hard constraint that it is *semantics-neutral*. These tests pin that
 * down three ways:
 *
 *  1. Golden capture: every collector's GcEventLog phase/cycle/stall
 *     stream, serialized with exact IEEE-754 bit patterns, must stay
 *     *byte-identical* to the stream recorded before the refactor
 *     (tests/gc/data/, captured from the three hand-rolled state
 *     machines). Unlike tests/golden, the comparison here is exact —
 *     not numeric-tolerant — because bit equality is the claim.
 *
 *  2. Determinism: a j1-vs-j8 LBO sweep through the batched
 *     freeze/unfreeze and fused-dispatch path must stay bitwise
 *     replayable, like every other path in the harness.
 *
 *  3. Unit semantics of the fused engine action (added with the
 *     refactor): sleepThenCompute must behave exactly like the
 *     sleep-then-dispatch-then-compute pair it replaces, minus one
 *     agent dispatch.
 *
 * Regenerating after an *intentional* behaviour change:
 *
 *     CAPO_REGEN_GOLDEN=1 ./build/tests/pause_protocol_test
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gc/factory.hh"
#include "harness/lbo_experiment.hh"
#include "metrics/export.hh"
#include "report/codec.hh"
#include "runtime/execution.hh"
#include "sim/agent.hh"
#include "sim/engine.hh"
#include "workloads/registry.hh"

#ifndef CAPO_PAUSE_GOLDEN_DIR
#error "pause_protocol_test needs CAPO_PAUSE_GOLDEN_DIR"
#endif

namespace capo {
namespace {

bool
regenerating()
{
    const char *env = std::getenv("CAPO_REGEN_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
goldenPath(const std::string &name)
{
    return std::string(CAPO_PAUSE_GOLDEN_DIR) + "/" + name;
}

/** "ZGC*" → "ZGC_": display names carry glob characters that have no
 *  business in file names (or gtest parameter names). */
std::string
fileSafeName(std::string name)
{
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

// ---------------------------------------------------------------------
// Golden capture of the GcEventLog streams.

runtime::ExecutionConfig
execConfig(double heap_mb)
{
    runtime::ExecutionConfig c;
    c.cpus = 32.0;
    c.heap_bytes = heap_mb * 1024.0 * 1024.0;
    c.survivor_fraction = 0.03;
    c.survivor_reference_bytes = heap_mb * 1024.0 * 1024.0 * 0.5;
    c.seed = 11;
    c.time_limit_sec = 400;
    return c;
}

runtime::MutatorPlan
mutatorPlan(double seconds, double alloc_gb)
{
    runtime::MutatorPlan p;
    p.iterations = 2;
    p.width = 8.0;
    p.work_per_iteration = seconds * 1e9 * p.width;
    p.alloc_per_iteration = alloc_gb * 1e9;
    return p;
}

heap::LiveSetModel
liveModel(double mb)
{
    heap::LiveSetModel m;
    m.base_bytes = mb * 1024.0 * 1024.0;
    m.buildup_fraction = 0.05;
    return m;
}

/**
 * The whole observable pause story of one execution, every double as
 * its exact bit pattern: phase windows (kind, begin, end, cpu),
 * collection cycles (kind, begin, end, traced, reclaimed, post-GC),
 * stall totals, and the headline wall/cpu/dispatch numbers.
 */
std::string
serializeStreams(const runtime::ExecutionResult &result)
{
    using report::encodeDouble;
    std::ostringstream out;
    out << "completed " << result.completed << " oom " << result.oom
        << "\n";
    out << "wall " << encodeDouble(result.wall) << " cpu "
        << encodeDouble(result.cpu) << " gc_cpu "
        << encodeDouble(result.gc_cpu) << "\n";
    out << "dispatches " << result.dispatches << " collections "
        << result.collections << "\n";
    for (const auto &p : result.log.phases()) {
        out << "phase " << runtime::phaseName(p.phase) << " "
            << encodeDouble(p.begin) << " " << encodeDouble(p.end)
            << " " << encodeDouble(p.cpu) << " " << p.open << "\n";
    }
    for (const auto &c : result.log.cycles()) {
        out << "cycle " << runtime::phaseName(c.kind) << " "
            << encodeDouble(c.begin) << " " << encodeDouble(c.end)
            << " " << encodeDouble(c.traced) << " "
            << encodeDouble(c.reclaimed) << " "
            << encodeDouble(c.post_gc_bytes) << "\n";
    }
    out << "stalls " << result.log.stallCount() << " "
        << encodeDouble(result.log.stallWall()) << "\n";
    return out.str();
}

void
expectByteIdenticalGolden(const std::string &name,
                          const std::string &actual)
{
    const auto path = goldenPath(name);
    if (regenerating()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        std::cerr << "regenerated " << path << "\n";
        return;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::ofstream save(path + ".actual",
                           std::ios::binary | std::ios::trunc);
        save << actual;
        FAIL() << "missing golden " << path
               << " — regen with CAPO_REGEN_GOLDEN=1";
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string expected = buffer.str();
    if (expected != actual) {
        std::ofstream save(path + ".actual",
                           std::ios::binary | std::ios::trunc);
        save << actual;
        FAIL() << name << ": GcEventLog stream is not byte-identical "
               << "to the pre-refactor capture (see " << path
               << ".actual). The pause machinery must be "
               << "semantics-neutral; if the change is intentional, "
               << "regen with CAPO_REGEN_GOLDEN=1.";
    }
}

std::string
captureStreams(gc::Algorithm algorithm, double heap_mb, double seconds,
               double alloc_gb, double live_mb)
{
    auto collector = gc::makeCollector(algorithm, 1.3);
    const auto result =
        runtime::runExecution(execConfig(heap_mb),
                              mutatorPlan(seconds, alloc_gb),
                              liveModel(live_mb), *collector);
    return serializeStreams(result);
}

class PauseGolden : public ::testing::TestWithParam<gc::Algorithm>
{
};

/** Roomy heap: the steady young/full (or cycle) cadence. */
TEST_P(PauseGolden, RoomyHeapStreamsUnchanged)
{
    const std::string name =
        "pause_" + fileSafeName(gc::algorithmName(GetParam())) +
        "_roomy.txt";
    expectByteIdenticalGolden(
        name, captureStreams(GetParam(), 128.0, 1.0, 2.0, 20.0));
}

/** Tight heap + fast allocation: stalls, degenerated cycles, pacing. */
TEST_P(PauseGolden, TightHeapStreamsUnchanged)
{
    const std::string name =
        "pause_" + fileSafeName(gc::algorithmName(GetParam())) +
        "_tight.txt";
    expectByteIdenticalGolden(
        name, captureStreams(GetParam(), 48.0, 0.5, 8.0, 20.0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PauseGolden, ::testing::ValuesIn(gc::allCollectors()),
    [](const ::testing::TestParamInfo<gc::Algorithm> &info) {
        return fileSafeName(gc::algorithmName(info.param));
    });

/** G1 with marking pressure: nested young pauses inside concurrent
 *  marking plus the mixed-pause train — the overlap case the
 *  protocol's phase tokens must keep straight. */
TEST(PauseGoldenTest, G1MarkingStreamsUnchanged)
{
    expectByteIdenticalGolden(
        "pause_G1_marking.txt",
        captureStreams(gc::Algorithm::G1, 64.0, 1.0, 4.0, 30.0));
}

// ---------------------------------------------------------------------
// j1-vs-j8 determinism through the batched freeze/unfreeze and fused
// pause-dispatch path.

TEST(PauseDeterminismTest, LboSweepBitwiseAcrossJobs)
{
    harness::LboSweepOptions sweep;
    sweep.factors = {2.0, 3.0};
    sweep.collectors = gc::productionCollectors();
    sweep.base.iterations = 2;
    sweep.base.invocations = 2;
    sweep.base.time_limit_sec = 300;
    sweep.base.jobs = 1;

    const auto &fop = workloads::byName("fop");
    const auto serial = runLboSweep(fop, sweep);

    sweep.base.jobs = 8;
    const auto parallel = runLboSweep(fop, sweep);

    EXPECT_EQ(serial.dispatches, parallel.dispatches);
    std::stringstream a, b;
    metrics::exportLboCsv(serial.analysis, a);
    metrics::exportLboCsv(parallel.analysis, b);
    EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------------
// Unit semantics of the fused engine action: sleepThenCompute behaves
// exactly like the sleepUntil + compute pair it replaces — same finish
// time, same task clock, same engine event count — with one fewer
// agent resume.

class SleepComputeAgent : public sim::Agent
{
  public:
    explicit SleepComputeAgent(bool fused, double work)
        : fused_(fused), work_(work)
    {
    }

    std::string_view name() const override { return "sleep-compute"; }

    sim::Action
    resume(sim::Engine &engine) override
    {
        ++resumes_;
        if (resumes_ == 1) {
            if (fused_) {
                return sim::Action::sleepThenCompute(
                    engine.now() + 100.0, work_, 2.0);
            }
            return sim::Action::sleepUntil(engine.now() + 100.0);
        }
        if (!fused_ && resumes_ == 2 && work_ > 0.0)
            return sim::Action::compute(work_, 2.0);
        finish_ = engine.now();
        return sim::Action::exit();
    }

    bool fused_;
    double work_;
    int resumes_ = 0;
    sim::Time finish_ = -1.0;
};

TEST(FusedActionTest, MatchesSleepComputePairMinusOneResume)
{
    sim::Engine legacy_engine(8.0);
    SleepComputeAgent legacy(/*fused=*/false, 50.0);
    const auto legacy_id = legacy_engine.addAgent(&legacy);
    legacy_engine.run(1e6);

    sim::Engine fused_engine(8.0);
    SleepComputeAgent fused(/*fused=*/true, 50.0);
    const auto fused_id = fused_engine.addAgent(&fused);
    fused_engine.run(1e6);

    // Identical observable timeline: sleep to t=100, then 50 cpu-ns at
    // width 2 finishes at t=125 with 50 ns on the task clock.
    EXPECT_EQ(legacy.finish_, 125.0);
    EXPECT_EQ(fused.finish_, legacy.finish_);
    EXPECT_EQ(fused_engine.cpuTime(fused_id),
              legacy_engine.cpuTime(legacy_id));
    // The staged transition still counts as a delivered engine event
    // (event totals stay comparable across the refactor)...
    EXPECT_EQ(fused_engine.dispatchCount(),
              legacy_engine.dispatchCount());
    // ...but the agent is resumed one less time per pause.
    EXPECT_EQ(legacy.resumes_, 3);
    EXPECT_EQ(fused.resumes_, 2);
}

TEST(FusedActionTest, ZeroWorkStagedComputeDegeneratesToSleep)
{
    sim::Engine engine(8.0);
    SleepComputeAgent agent(/*fused=*/true, 0.0);
    const auto id = engine.addAgent(&agent);
    engine.run(1e6);

    // A zero-work staged compute falls back to an ordinary pending
    // dispatch at the timer's due time.
    EXPECT_EQ(agent.finish_, 100.0);
    EXPECT_EQ(agent.resumes_, 2);
    EXPECT_EQ(engine.cpuTime(id), 0.0);
}

} // namespace
} // namespace capo
