/**
 * @file
 * Unit and property tests for the discrete-event fluid scheduler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "sim/engine.hh"
#include "sim/time.hh"

namespace capo::sim {
namespace {

/** An agent driven by a scripted list of actions. */
class ScriptAgent : public Agent
{
  public:
    explicit ScriptAgent(std::string name, std::vector<Action> script)
        : name_(std::move(name)), script_(std::move(script))
    {
    }

    std::string_view name() const override { return name_; }

    Action
    resume(Engine &engine) override
    {
        resume_times.push_back(engine.now());
        if (next_ >= script_.size())
            return Action::exit();
        return script_[next_++];
    }

    std::vector<Time> resume_times;

  private:
    std::string name_;
    std::vector<Action> script_;
    std::size_t next_ = 0;
};

/** An agent whose behaviour is given by a lambda. */
class LambdaAgent : public Agent
{
  public:
    using Body = std::function<Action(Engine &, int step)>;

    LambdaAgent(std::string name, Body body)
        : name_(std::move(name)), body_(std::move(body))
    {
    }

    std::string_view name() const override { return name_; }

    Action
    resume(Engine &engine) override
    {
        return body_(engine, step_++);
    }

  private:
    std::string name_;
    Body body_;
    int step_ = 0;
};

TEST(EngineTest, SingleComputeTakesWorkOverWidth)
{
    Engine engine(4.0);
    ScriptAgent a("a", {Action::compute(1000.0, 2.0)});
    auto id = engine.addAgent(&a);
    EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);
    // 1000 cpu-ns at width 2 on an idle 4-cpu machine: 500 wall-ns.
    EXPECT_DOUBLE_EQ(engine.now(), 500.0);
    EXPECT_DOUBLE_EQ(engine.cpuTime(id), 1000.0);
    EXPECT_TRUE(engine.finished(id));
}

TEST(EngineTest, WidthCappedByCpuCount)
{
    Engine engine(2.0);
    ScriptAgent a("a", {Action::compute(1000.0, 8.0)});
    engine.addAgent(&a);
    engine.run();
    // Only 2 cpus available: 1000 cpu-ns takes 500 wall-ns.
    EXPECT_DOUBLE_EQ(engine.now(), 500.0);
    EXPECT_DOUBLE_EQ(engine.totalCpuTime(), 1000.0);
}

TEST(EngineTest, TwoAgentsShareOneCpu)
{
    Engine engine(1.0);
    ScriptAgent a("a", {Action::compute(100.0)});
    ScriptAgent b("b", {Action::compute(300.0)});
    auto ia = engine.addAgent(&a);
    auto ib = engine.addAgent(&b);
    engine.run();
    // Processor sharing: both run at 0.5 until a finishes at t=200;
    // b then has 200 left at full speed, finishing at t=400.
    EXPECT_DOUBLE_EQ(engine.now(), 400.0);
    EXPECT_DOUBLE_EQ(engine.cpuTime(ia), 100.0);
    EXPECT_DOUBLE_EQ(engine.cpuTime(ib), 300.0);
}

TEST(EngineTest, UncontendedAgentsRunInParallel)
{
    Engine engine(8.0);
    ScriptAgent a("a", {Action::compute(100.0)});
    ScriptAgent b("b", {Action::compute(300.0)});
    engine.addAgent(&a);
    engine.addAgent(&b);
    engine.run();
    EXPECT_DOUBLE_EQ(engine.now(), 300.0);
    EXPECT_DOUBLE_EQ(engine.totalCpuTime(), 400.0);
}

TEST(EngineTest, SleepUntilWakesAtRequestedTime)
{
    Engine engine(1.0);
    ScriptAgent a("a", {Action::sleepUntil(250.0),
                        Action::compute(50.0)});
    engine.addAgent(&a);
    engine.run();
    EXPECT_DOUBLE_EQ(engine.now(), 300.0);
    ASSERT_EQ(a.resume_times.size(), 3u);
    EXPECT_DOUBLE_EQ(a.resume_times[1], 250.0);
}

TEST(EngineTest, SleepInThePastFiresImmediately)
{
    Engine engine(1.0);
    ScriptAgent a("a", {Action::compute(100.0),
                        Action::sleepUntil(10.0),  // already past at t=100
                        Action::compute(10.0)});
    engine.addAgent(&a);
    engine.run();
    EXPECT_DOUBLE_EQ(engine.now(), 110.0);
}

TEST(EngineTest, ConditionNotifyAllWakesEveryWaiter)
{
    CondId cond = kInvalidCond;

    auto waiter_body = [&](Engine &, int step) {
        if (step == 0)
            return Action::wait(cond);
        if (step == 1)
            return Action::compute(100.0);
        return Action::exit();
    };
    LambdaAgent waiter1("w1", waiter_body);
    LambdaAgent waiter2("w2", waiter_body);
    LambdaAgent notifier("n", [&](Engine &engine, int step) {
        if (step == 0)
            return Action::compute(500.0);
        engine.notifyAll(cond);
        return Action::exit();
    });

    Engine e(4.0);
    cond = e.makeCondition("test");
    auto w1 = e.addAgent(&waiter1);
    auto w2 = e.addAgent(&waiter2);
    e.addAgent(&notifier);
    EXPECT_EQ(e.run(), Engine::StopReason::AllExited);
    EXPECT_DOUBLE_EQ(e.now(), 600.0);
    EXPECT_DOUBLE_EQ(e.cpuTime(w1), 100.0);
    EXPECT_DOUBLE_EQ(e.cpuTime(w2), 100.0);
}

TEST(EngineTest, NotifyOneWakesInFifoOrder)
{
    CondId cond = kInvalidCond;
    std::vector<int> order;

    auto make_waiter = [&](int tag) {
        return LambdaAgent::Body([&order, &cond, tag](Engine &, int step) {
            if (step == 0)
                return Action::wait(cond);
            order.push_back(tag);
            return Action::exit();
        });
    };
    LambdaAgent w1("w1", make_waiter(1));
    LambdaAgent w2("w2", make_waiter(2));
    LambdaAgent notifier("n", [&](Engine &engine, int step) {
        if (step == 0)
            return Action::compute(10.0);
        if (step == 1) {
            engine.notifyOne(cond);
            return Action::compute(10.0);
        }
        engine.notifyOne(cond);
        return Action::exit();
    });

    Engine engine(4.0);
    cond = engine.makeCondition("fifo");
    engine.addAgent(&w1);
    engine.addAgent(&w2);
    engine.addAgent(&notifier);
    engine.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(EngineTest, DeadlockedWaitersReportStalled)
{
    Engine engine(1.0);
    CondId cond = engine.makeCondition("never");
    ScriptAgent a("a", {Action::wait(cond)});
    engine.addAgent(&a);
    EXPECT_EQ(engine.run(), Engine::StopReason::Stalled);
}

TEST(EngineTest, TimeLimitStopsTheRun)
{
    Engine engine(1.0);
    ScriptAgent a("a", {Action::compute(1000.0)});
    auto id = engine.addAgent(&a);
    EXPECT_EQ(engine.run(400.0), Engine::StopReason::TimeLimit);
    EXPECT_DOUBLE_EQ(engine.now(), 400.0);
    EXPECT_FALSE(engine.finished(id));
    // Partial work was credited.
    EXPECT_DOUBLE_EQ(engine.cpuTime(id), 400.0);
}

TEST(EngineTest, FrozenAgentMakesNoProgress)
{
    CondId start = kInvalidCond;
    AgentId victim_id = kInvalidAgent;

    LambdaAgent victim("victim", [&](Engine &, int step) {
        if (step == 0)
            return Action::compute(1000.0);
        return Action::exit();
    });
    LambdaAgent freezer("freezer", [&](Engine &engine, int step) {
        switch (step) {
          case 0:
            return Action::compute(100.0);  // let victim run 100 ns
          case 1:
            engine.freeze(victim_id);
            return Action::sleepUntil(engine.now() + 500.0);
          default:
            engine.unfreeze(victim_id);
            return Action::exit();
        }
    });

    Engine engine(4.0);
    victim_id = engine.addAgent(&victim);
    engine.addAgent(&freezer);
    start = engine.makeCondition("unused");
    (void)start;
    engine.run();
    // victim: 100 ns progress, frozen 500 ns, then 900 ns remaining.
    EXPECT_DOUBLE_EQ(engine.now(), 1500.0);
    EXPECT_DOUBLE_EQ(engine.cpuTime(victim_id), 1000.0);
    EXPECT_DOUBLE_EQ(engine.frozenWallTime(), 500.0);
}

TEST(EngineTest, NotifyWhileFrozenIsDeferredUntilUnfreeze)
{
    CondId cond = kInvalidCond;
    AgentId waiter_id = kInvalidAgent;
    Time woke_at = -1.0;

    LambdaAgent waiter("waiter", [&](Engine &engine, int step) {
        if (step == 0)
            return Action::wait(cond);
        woke_at = engine.now();
        return Action::exit();
    });
    LambdaAgent driver("driver", [&](Engine &engine, int step) {
        switch (step) {
          case 0:
            engine.freeze(waiter_id);
            return Action::compute(100.0);
          case 1:
            engine.notifyAll(cond);  // waiter frozen: must be deferred
            return Action::compute(100.0);
          default:
            engine.unfreeze(waiter_id);
            return Action::exit();
        }
    });

    Engine engine(1.0);
    cond = engine.makeCondition("c");
    waiter_id = engine.addAgent(&waiter);
    engine.addAgent(&driver);
    EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);
    EXPECT_DOUBLE_EQ(woke_at, 200.0);
}

TEST(EngineTest, SpeedFactorSlowsProgressAndCpuUse)
{
    Engine engine(4.0);
    AgentId id = kInvalidAgent;
    LambdaAgent a("a", [&](Engine &engine, int step) {
        if (step == 0) {
            engine.setSpeedFactor(id, 0.25);
            return Action::compute(100.0);
        }
        return Action::exit();
    });
    id = engine.addAgent(&a);
    engine.run();
    // Paced to quarter speed: 400 wall-ns, but only 100 cpu-ns burned
    // (a stalled thread does not consume CPU).
    EXPECT_DOUBLE_EQ(engine.now(), 400.0);
    EXPECT_DOUBLE_EQ(engine.cpuTime(id), 100.0);
}

TEST(EngineTest, RateTimelineReflectsShareAndFreeze)
{
    AgentId traced_id = kInvalidAgent;
    LambdaAgent traced("traced", [&](Engine &, int step) {
        if (step == 0)
            return Action::compute(1000.0);
        return Action::exit();
    });
    LambdaAgent rival("rival", [&](Engine &engine, int step) {
        switch (step) {
          case 0:
            return Action::compute(100.0);  // contend: share drops to 1/2
          case 1:
            engine.freeze(traced_id);
            return Action::compute(50.0);  // traced frozen: rate 0
          default:
            engine.unfreeze(traced_id);
            return Action::exit();
        }
    });

    Engine engine(1.0);
    traced_id = engine.addAgent(&traced);
    engine.addAgent(&rival);
    engine.tracePerWidthRate(traced_id);
    engine.run();

    const auto &timeline = engine.rateTimeline();
    ASSERT_GE(timeline.size(), 3u);
    // Phase 1: both computing on 1 cpu -> share 0.5, until t=200.
    EXPECT_DOUBLE_EQ(timeline[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(timeline[0].end, 200.0);
    EXPECT_DOUBLE_EQ(timeline[0].rate, 0.5);
    // Phase 2: traced frozen while rival runs 50 ns.
    EXPECT_DOUBLE_EQ(timeline[1].rate, 0.0);
    EXPECT_DOUBLE_EQ(timeline[1].end, 250.0);
    // Phase 3: traced alone at full rate.
    EXPECT_DOUBLE_EQ(timeline[2].rate, 1.0);

    // Integral of rate over the timeline equals total work done.
    double integral = 0.0;
    for (const auto &seg : timeline)
        integral += (seg.end - seg.begin) * seg.rate;
    EXPECT_NEAR(integral, 1000.0, 1e-6);
}

TEST(EngineTest, ZeroWorkComputeCompletesImmediately)
{
    Engine engine(1.0);
    ScriptAgent a("a", {Action::compute(0.0), Action::compute(100.0)});
    engine.addAgent(&a);
    engine.run();
    EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(EngineTest, TimerFiringWhileFrozenIsDeferred)
{
    AgentId sleeper_id = kInvalidAgent;
    Time woke_at = -1.0;

    LambdaAgent sleeper("sleeper", [&](Engine &engine, int step) {
        if (step == 0)
            return Action::sleepUntil(100.0);
        woke_at = engine.now();
        return Action::exit();
    });
    LambdaAgent freezer("freezer", [&](Engine &engine, int step) {
        switch (step) {
          case 0:
            engine.freeze(sleeper_id);
            return Action::compute(300.0);  // timer fires at t=100
          default:
            engine.unfreeze(sleeper_id);    // t=300: deliver wake
            return Action::exit();
        }
    });

    Engine engine(1.0);
    sleeper_id = engine.addAgent(&sleeper);
    engine.addAgent(&freezer);
    EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);
    EXPECT_DOUBLE_EQ(woke_at, 300.0);
}

TEST(EngineTest, PermanentlyFrozenComputeReportsStalled)
{
    AgentId victim_id = kInvalidAgent;
    LambdaAgent victim("victim", [&](Engine &, int) {
        return Action::compute(1000.0);
    });
    LambdaAgent freezer("freezer", [&](Engine &engine, int step) {
        if (step == 0) {
            engine.freeze(victim_id);
            return Action::compute(10.0);
        }
        return Action::exit();  // never unfreezes
    });

    Engine engine(2.0);
    victim_id = engine.addAgent(&victim);
    engine.addAgent(&freezer);
    EXPECT_EQ(engine.run(), Engine::StopReason::Stalled);
    EXPECT_FALSE(engine.finished(victim_id));
}

TEST(EngineTest, SpeedChangeMidComputeTakesEffectImmediately)
{
    AgentId worker_id = kInvalidAgent;
    LambdaAgent worker("worker", [&](Engine &, int step) {
        if (step == 0)
            return Action::compute(400.0);
        return Action::exit();
    });
    LambdaAgent pacer("pacer", [&](Engine &engine, int step) {
        if (step == 0)
            return Action::compute(200.0);  // worker runs 200 at full
        engine.setSpeedFactor(worker_id, 0.5);
        return Action::exit();
    });

    Engine engine(4.0);
    worker_id = engine.addAgent(&worker);
    engine.addAgent(&pacer);
    engine.run();
    // 200 ns at speed 1, then 200 cpu-ns left at speed 0.5: 400 more
    // wall-ns.
    EXPECT_DOUBLE_EQ(engine.now(), 600.0);
    EXPECT_DOUBLE_EQ(engine.cpuTime(worker_id), 400.0);
}

TEST(EngineTest, DoubleFreezeAndUnfreezeAreIdempotent)
{
    AgentId victim_id = kInvalidAgent;
    LambdaAgent victim("victim", [&](Engine &, int step) {
        if (step == 0)
            return Action::compute(100.0);
        return Action::exit();
    });
    LambdaAgent driver("driver", [&](Engine &engine, int step) {
        switch (step) {
          case 0:
            engine.freeze(victim_id);
            engine.freeze(victim_id);
            return Action::compute(50.0);
          case 1:
            engine.unfreeze(victim_id);
            engine.unfreeze(victim_id);
            return Action::compute(10.0);
          default:
            return Action::exit();
        }
    });

    Engine engine(4.0);
    victim_id = engine.addAgent(&victim);
    engine.addAgent(&driver);
    EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);
    EXPECT_DOUBLE_EQ(engine.cpuTime(victim_id), 100.0);
    EXPECT_DOUBLE_EQ(engine.now(), 150.0);
}

TEST(EngineTest, LongRunsKeepAdvancingDespiteUlpResidues)
{
    // Regression test for the floating-point livelock: once now_ is
    // large, a compute residue below one ulp of now_ must still
    // complete rather than stopping time (see Engine::advance).
    LambdaAgent churn("churn", [&](Engine &, int step) {
        if (step < 200000)
            return Action::compute(1.0 + 1e-7 * (step % 7), 1.0);
        return Action::exit();
    });
    LambdaAgent rival("rival", [&](Engine &, int step) {
        if (step < 10)
            return Action::compute(3.0e9, 1.0);
        return Action::exit();
    });
    Engine engine(1.0);
    engine.addAgent(&churn);
    engine.addAgent(&rival);
    EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);
    EXPECT_GT(engine.now(), 3.0e10 - 1.0);
}

// ---------------------------------------------------------------------
// Property-style sweeps.
// ---------------------------------------------------------------------

struct ShareCase {
    double cpus;
    int agents;
    double work;
};

class EngineShareProperty : public ::testing::TestWithParam<ShareCase>
{
};

TEST_P(EngineShareProperty, ConservationAndCapacityInvariants)
{
    const auto param = GetParam();
    Engine engine(param.cpus);
    std::vector<std::unique_ptr<ScriptAgent>> agents;
    for (int i = 0; i < param.agents; ++i) {
        agents.push_back(std::make_unique<ScriptAgent>(
            "a" + std::to_string(i),
            std::vector<Action>{Action::compute(param.work * (i + 1))}));
        engine.addAgent(agents.back().get());
    }
    EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);

    // Work conservation: total CPU time equals total work submitted.
    double expected = 0.0;
    for (int i = 0; i < param.agents; ++i)
        expected += param.work * (i + 1);
    EXPECT_NEAR(engine.totalCpuTime(), expected, expected * 1e-9);

    // Capacity: task clock can never exceed wall time x cpus.
    EXPECT_LE(engine.totalCpuTime(),
              engine.now() * param.cpus * (1.0 + 1e-9));

    // Wall time is at least the critical path (longest single job,
    // which can use at most 1 cpu at width 1).
    EXPECT_GE(engine.now() * (1.0 + 1e-9), param.work * param.agents);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineShareProperty,
    ::testing::Values(ShareCase{1.0, 1, 100.0}, ShareCase{1.0, 4, 250.0},
                      ShareCase{2.0, 3, 999.5}, ShareCase{4.0, 8, 10.0},
                      ShareCase{32.0, 5, 1e6}, ShareCase{0.5, 2, 123.0},
                      ShareCase{16.0, 16, 7.25}, ShareCase{3.0, 7, 3333.0}));

class EngineDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineDeterminism, RepeatedRunsAreBitIdentical)
{
    auto run_once = [&](double &wall, double &cpu, std::uint64_t &events) {
        Engine engine(4.0);
        std::vector<std::unique_ptr<LambdaAgent>> agents;
        const int n = GetParam();
        for (int i = 0; i < n; ++i) {
            agents.push_back(std::make_unique<LambdaAgent>(
                "m" + std::to_string(i),
                [i](Engine &engine, int step) {
                    if (step < 20) {
                        if (step % 5 == 4) {
                            return Action::sleepUntil(engine.now() +
                                                      37.0 * (i + 1));
                        }
                        return Action::compute(11.0 + 3.0 * i, 1.0 + i % 3);
                    }
                    return Action::exit();
                }));
            engine.addAgent(agents.back().get());
        }
        EXPECT_EQ(engine.run(), Engine::StopReason::AllExited);
        wall = engine.now();
        cpu = engine.totalCpuTime();
        events = engine.dispatchCount();
    };

    double wall1, cpu1, wall2, cpu2;
    std::uint64_t ev1, ev2;
    run_once(wall1, cpu1, ev1);
    run_once(wall2, cpu2, ev2);
    EXPECT_EQ(wall1, wall2);
    EXPECT_EQ(cpu1, cpu2);
    EXPECT_EQ(ev1, ev2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineDeterminism,
                         ::testing::Values(1, 2, 5, 9, 16));

} // namespace
} // namespace capo::sim
