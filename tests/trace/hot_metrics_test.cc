/**
 * @file
 * Hot-tier metrics tests: lock-free recording correctness under
 * concurrency (count/sum conservation across 8 threads — the TSan
 * target), quantile agreement with the general log-bucketed
 * Histogram, snapshot windowing, gating, and registry mirroring.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "support/rng.hh"
#include "trace/hot_metrics.hh"
#include "trace/metrics_registry.hh"

namespace {

using namespace capo;

/** Serialize the hot tier across tests: it is process-global state. */
class HotMetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::hot::setEnabled(false);
        trace::hot::reset();
        trace::hot::setEnabled(true);
    }

    void
    TearDown() override
    {
        trace::hot::setEnabled(false);
        trace::hot::reset();
    }
};

TEST_F(HotMetricsTest, DisabledRecordsNothing)
{
    trace::hot::setEnabled(false);
    trace::hot::observe(trace::hot::TimerQueueDepth, 5.0);
    trace::hot::count(trace::hot::SimEvents, 100);
    const auto snap = trace::hot::snapshot();
    EXPECT_EQ(snap.histogram(trace::hot::TimerQueueDepth).count, 0u);
    EXPECT_EQ(snap.counter(trace::hot::SimEvents), 0u);
}

TEST_F(HotMetricsTest, BucketsCoverBoundsAndOverflow)
{
    // First bound of TimerQueueDepth is 1; last is 4096. A sample at
    // a bound lands in that bound's bucket; past the last bound lands
    // in the overflow cell.
    trace::hot::observe(trace::hot::TimerQueueDepth, 1.0);
    trace::hot::observe(trace::hot::TimerQueueDepth, 2.0);
    trace::hot::observe(trace::hot::TimerQueueDepth, 1e9);
    const auto hist =
        trace::hot::snapshot().histogram(trace::hot::TimerQueueDepth);
    ASSERT_EQ(hist.buckets.size(), hist.bounds.size() + 1);
    EXPECT_EQ(hist.buckets.front(), 1u);   // value 1 -> bound 1
    EXPECT_EQ(hist.buckets[1], 1u);        // value 2 -> bound 2
    EXPECT_EQ(hist.buckets.back(), 1u);    // 1e9 -> overflow
    EXPECT_EQ(hist.count, 3u);
}

TEST_F(HotMetricsTest, SumTracksValuesWithinScaleError)
{
    double expected = 0.0;
    for (int i = 1; i <= 1000; ++i) {
        trace::hot::observe(trace::hot::CellSetupNs,
                            static_cast<double>(i) * 1000.0);
        expected += i * 1000.0;
    }
    const auto hist =
        trace::hot::snapshot().histogram(trace::hot::CellSetupNs);
    EXPECT_EQ(hist.count, 1000u);
    // Sums are scaled-integer (x1024, truncated): each sample loses
    // less than 1/1024 of a unit.
    EXPECT_NEAR(hist.sum, expected, 1000.0 / 1024.0 + 1.0);
    EXPECT_NEAR(hist.mean(), expected / 1000.0, 1.0);
}

TEST_F(HotMetricsTest, ConcurrentRecordingConservesEverySample)
{
    // The TSan target: 8 threads hammer the same histogram and
    // counter; every sample must be accounted for afterwards (atomic
    // conservation), with no lock in sight on the record path.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            support::Rng rng(0xC0FFEE + t);
            for (int i = 0; i < kPerThread; ++i) {
                const double value =
                    static_cast<double>(rng.next() % 5000);
                trace::hot::observe(trace::hot::TimerQueueDepth, value);
                trace::hot::count(trace::hot::SimEvents, 1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    const auto snap = trace::hot::snapshot();
    const auto &hist = snap.histogram(trace::hot::TimerQueueDepth);
    EXPECT_EQ(hist.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(snap.counter(trace::hot::SimEvents),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t bucket_total = 0;
    for (const auto cell : hist.buckets)
        bucket_total += cell;
    EXPECT_EQ(bucket_total, hist.count);
}

TEST_F(HotMetricsTest, QuantilesAgreeWithGeneralHistogram)
{
    // Same sample stream into the hot tier and the log-bucketed
    // registry Histogram; both are bucket approximations, so agree
    // within the coarser of the two buckets (the hot tier's bounds
    // are 2x-spaced here, the registry's are ~33 % log10 buckets).
    trace::Histogram general;
    support::Rng rng(42);
    for (int i = 0; i < 50000; ++i) {
        // Log-uniform-ish over [1, 4096): both histograms see spread.
        const double value = std::pow(
            2.0, static_cast<double>(rng.next() % 1200) / 100.0);
        trace::hot::observe(trace::hot::TimerQueueDepth, value);
        general.record(value);
    }
    const auto hot =
        trace::hot::snapshot().histogram(trace::hot::TimerQueueDepth);
    for (const double q : {0.25, 0.5, 0.9, 0.99}) {
        const double hot_q = hot.quantile(q);
        const double general_q = general.quantile(q);
        ASSERT_GT(hot_q, 0.0);
        ASSERT_GT(general_q, 0.0);
        // Agreement within a factor of 2: one hot bucket width.
        EXPECT_LT(std::abs(std::log2(hot_q / general_q)), 1.0)
            << "q=" << q << " hot=" << hot_q
            << " general=" << general_q;
    }
    // Means are bucket-free on both sides: tight agreement.
    EXPECT_NEAR(hot.mean(), general.mean(),
                general.mean() * 0.01 + 0.01);
}

TEST_F(HotMetricsTest, SnapshotSinceWindowsTheDelta)
{
    trace::hot::observe(trace::hot::PoolStealScan, 3.0);
    trace::hot::count(trace::hot::PoolSteals, 7);
    const auto before = trace::hot::snapshot();
    trace::hot::observe(trace::hot::PoolStealScan, 5.0);
    trace::hot::observe(trace::hot::PoolStealScan, 9.0);
    trace::hot::count(trace::hot::PoolSteals, 2);
    const auto delta = trace::hot::snapshot().since(before);
    EXPECT_EQ(delta.histogram(trace::hot::PoolStealScan).count, 2u);
    EXPECT_EQ(delta.counter(trace::hot::PoolSteals), 2u);
    EXPECT_NEAR(delta.histogram(trace::hot::PoolStealScan).sum, 14.0,
                0.1);
}

TEST_F(HotMetricsTest, NamesAreDotted)
{
    EXPECT_STREQ(trace::hot::histogramName(trace::hot::TimerQueueDepth),
                 "sim.timer.queue_depth");
    EXPECT_STREQ(trace::hot::counterName(trace::hot::SimEvents),
                 "sim.engine.events");
    const auto snap = trace::hot::snapshot();
    ASSERT_EQ(snap.histograms.size(), trace::hot::kHistogramCount);
    EXPECT_STREQ(snap.histogram(trace::hot::AllocStallNs).name,
                 "runtime.alloc.stall_ns");
}

TEST_F(HotMetricsTest, MirrorIntoRegistryIsIncremental)
{
    trace::MetricsRegistry registry;
    trace::hot::count(trace::hot::SimEvents, 10);
    trace::hot::observe(trace::hot::TimerQueueDepth, 8.0);
    trace::hot::mirrorInto(registry);
    EXPECT_DOUBLE_EQ(registry.counter("sim.engine.events").value(),
                     10.0);
    EXPECT_EQ(registry.histogram("sim.timer.queue_depth").count(), 1u);

    // A second mirror after more recording adds only the delta.
    trace::hot::count(trace::hot::SimEvents, 5);
    trace::hot::observe(trace::hot::TimerQueueDepth, 8.0);
    trace::hot::mirrorInto(registry);
    EXPECT_DOUBLE_EQ(registry.counter("sim.engine.events").value(),
                     15.0);
    EXPECT_EQ(registry.histogram("sim.timer.queue_depth").count(), 2u);

    // Mirroring with nothing new is a no-op.
    trace::hot::mirrorInto(registry);
    EXPECT_DOUBLE_EQ(registry.counter("sim.engine.events").value(),
                     15.0);
    EXPECT_EQ(registry.histogram("sim.timer.queue_depth").count(), 2u);
}

TEST_F(HotMetricsTest, QuantileEdgeCases)
{
    const auto empty =
        trace::hot::snapshot().histogram(trace::hot::DispatchBurst);
    EXPECT_EQ(empty.quantile(0.5), 0.0);

    // All samples beyond the last bound: quantile reports the last
    // bound (the histogram's honest "at least this much").
    trace::hot::observe(trace::hot::DispatchBurst, 1e9);
    trace::hot::observe(trace::hot::DispatchBurst, 2e9);
    const auto overflow =
        trace::hot::snapshot().histogram(trace::hot::DispatchBurst);
    EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 65536.0);
}

} // namespace
