/**
 * @file
 * Round-trip tests: export to the on-disk formats (Chrome trace-event
 * JSON, CSV) and re-parse, checking structural equality rather than
 * substrings. Covers the empty, single-event and >64k-event
 * shard-merge edge cases the exporters must survive.
 */

#include <gtest/gtest.h>

#include "testutil/json.hh"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "report/artifact.hh"
#include "support/csv.hh"
#include "trace/chrome_export.hh"
#include "trace/sink.hh"

namespace capo::trace {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

JsonValue
exportAndParse(const TraceSink &sink, std::size_t *written = nullptr)
{
    std::stringstream out;
    const auto n = writeChromeTrace(sink, out);
    if (written != nullptr)
        *written = n;
    JsonValue root;
    JsonParser parser(out.str());
    EXPECT_TRUE(parser.parse(root)) << out.str().substr(0, 400);
    return root;
}

/** Non-metadata events of the parsed export. */
std::vector<JsonValue>
dataEvents(const JsonValue &root)
{
    std::vector<JsonValue> out;
    for (const auto &e : root.at("traceEvents").items) {
        if (e.at("ph").text != "M")
            out.push_back(e);
    }
    return out;
}

TEST(ChromeRoundTripTest, EmptySinkExportsValidEmptyJson)
{
    TraceSink sink;
    std::size_t written = 0;
    const auto root = exportAndParse(sink, &written);
    EXPECT_EQ(written, 0u);
    EXPECT_EQ(root.at("traceEvents").items.size(), 0u);

    // A registered-but-unwritten track exports only its metadata.
    TraceSink named;
    named.registerTrack("idle");
    const auto root2 = exportAndParse(named);
    EXPECT_TRUE(dataEvents(root2).empty());
}

TEST(ChromeRoundTripTest, SingleEventRoundTripsExactly)
{
    TraceSink sink;
    const auto track = sink.registerTrack("only");
    sink.instant(track, Category::Sim, "tick", 1500.0, 7.5);

    std::size_t written = 0;
    const auto root = exportAndParse(sink, &written);
    EXPECT_EQ(written, 1u);
    const auto events = dataEvents(root);
    ASSERT_EQ(events.size(), 1u);
    const auto &e = events[0];
    EXPECT_EQ(e.at("ph").text, "i");
    EXPECT_EQ(e.at("name").text, "tick");
    // ns -> us with fractional precision.
    EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5);
    EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 7.5);
}

TEST(ChromeRoundTripTest, SpansSurviveQuotingAndNesting)
{
    TraceSink sink;
    const auto track = sink.registerTrack("q");
    const char *name = sink.internName("outer \"quoted\"\tname\\");
    sink.beginSpan(track, Category::Gc, name, 100.0);
    sink.beginSpan(track, Category::Gc, "inner", 200.0);
    sink.endSpan(track, Category::Gc, "inner", 300.0);
    sink.endSpan(track, Category::Gc, name, 400.0);

    const auto root = exportAndParse(sink);
    const auto events = dataEvents(root);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].at("name").text, "outer \"quoted\"\tname\\");
    EXPECT_EQ(events[0].at("ph").text, "B");
    EXPECT_EQ(events[1].at("name").text, "inner");
    EXPECT_EQ(events[3].at("ph").text, "E");
    // Nesting: B B E E in timestamp order.
    double last = -1.0;
    for (const auto &e : events) {
        EXPECT_GE(e.at("ts").number, last);
        last = e.at("ts").number;
    }
}

TEST(ChromeRoundTripTest, LargeShardMergeRoundTrips)
{
    // >64k events arriving through the shard-merge path (the parallel
    // sweep's route into the main sink), then through the exporter.
    constexpr std::size_t kEvents = 70000;
    TraceSink::Options options;
    options.track_capacity = 1u << 17;  // no ring wrap at this size
    TraceSink main(options);

    TraceSink shard(main.shardOptions());
    const auto track = shard.registerTrack("bulk");
    for (std::size_t i = 0; i < kEvents; ++i) {
        shard.counter(track, Category::Metrics, "n",
                      static_cast<double>(i) * 10.0,
                      static_cast<double>(i));
    }
    main.merge(shard, 5000.0);
    ASSERT_EQ(main.eventCount(), kEvents);
    EXPECT_EQ(main.droppedEvents(), 0u);

    std::size_t written = 0;
    const auto root = exportAndParse(main, &written);
    EXPECT_EQ(written, kEvents);
    const auto events = dataEvents(root);
    ASSERT_EQ(events.size(), kEvents);
    // Spot-check exact values and the merge offset (5000 ns = 5 us)
    // at the ends and a few interior points.
    for (std::size_t i : {std::size_t{0}, std::size_t{1},
                          kEvents / 2, kEvents - 1}) {
        const auto &e = events[i];
        EXPECT_EQ(e.at("ph").text, "C");
        EXPECT_DOUBLE_EQ(e.at("ts").number,
                         (static_cast<double>(i) * 10.0 + 5000.0) /
                             1000.0);
        EXPECT_DOUBLE_EQ(e.at("args").at("value").number,
                         static_cast<double>(i));
    }
}

TEST(ChromeRoundTripTest, ArtifactSinkExportMatchesDirectExport)
{
    TraceSink sink;
    const auto track = sink.registerTrack("t");
    sink.beginSpan(track, Category::Gc, "pause", 100.0);
    sink.endSpan(track, Category::Gc, "pause", 900.0);
    sink.instant(track, Category::Sim, "safepoint", 500.0, 1.0);

    std::stringstream direct;
    writeChromeTrace(sink, direct);

    report::ArtifactSink artifacts(
        ".", report::ArtifactSink::Mode::Memory);
    ASSERT_TRUE(writeChromeTraceArtifact(sink, artifacts,
                                         "trace.json"));
    EXPECT_EQ(artifacts.payload("trace.json"), direct.str());
}

TEST(ChromeRoundTripTest, ArtifactSinkExportQuarantinesUnderFaults)
{
    TraceSink sink;
    const auto track = sink.registerTrack("t");
    sink.instant(track, Category::Sim, "tick", 1.0, 1.0);

    report::ArtifactSink artifacts(
        ".", report::ArtifactSink::Mode::Memory);
    fault::FaultPlan plan;
    plan.setRate(fault::Site::ArtifactIo, 1.0);
    artifacts.armFaults(plan, 7);
    artifacts.setRetries(1);
    EXPECT_FALSE(writeChromeTraceArtifact(sink, artifacts,
                                          "trace.json"));
    EXPECT_EQ(artifacts.quarantined().size(), 1u);
}

} // namespace
} // namespace capo::trace

// ---------------------------------------------------------------------
// CSV round-trip.

namespace capo::support {
namespace {

/** RFC-4180 reader matching CsvWriter's quoting; just enough for the
 *  round-trip checks. */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"' && cell.empty()) {
            quoted = true;
        } else if (c == ',') {
            row.push_back(std::move(cell));
            cell.clear();
        } else if (c == '\n') {
            row.push_back(std::move(cell));
            cell.clear();
            rows.push_back(std::move(row));
            row.clear();
        } else {
            cell += c;
        }
    }
    EXPECT_TRUE(cell.empty() && row.empty()) << "unterminated row";
    return rows;
}

TEST(CsvRoundTripTest, QuotingRoundTripsHostileStrings)
{
    const std::vector<std::string> hostile = {
        "plain",       "comma, inside", "\"quoted\"",
        "multi\nline", "trailing,",     "\"\"",
        "",            "cr\rlf",
    };
    std::stringstream out;
    CsvWriter writer(out);
    writer.header({"a", "b"});
    for (std::size_t i = 0; i + 1 < hostile.size(); i += 2) {
        writer.beginRow();
        writer.cell(hostile[i]);
        writer.cell(hostile[i + 1]);
        writer.endRow();
    }
    EXPECT_EQ(writer.rows(), hostile.size() / 2);

    const auto rows = parseCsv(out.str());
    ASSERT_EQ(rows.size(), 1 + hostile.size() / 2);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
    for (std::size_t i = 0; i + 1 < hostile.size(); i += 2) {
        const auto &row = rows[1 + i / 2];
        ASSERT_EQ(row.size(), 2u);
        EXPECT_EQ(row[0], hostile[i]);
        EXPECT_EQ(row[1], hostile[i + 1]);
    }
}

TEST(CsvRoundTripTest, NumbersRoundTripWithinFormatPrecision)
{
    // Doubles print with 12 significant digits: re-parsed values must
    // agree to ~1e-11 relative — the documented (lossy) precision of
    // the CSV path; exact bits go through the checkpoint journal
    // instead.
    const std::vector<double> values = {
        0.0,     1.0,          -1.5,          3.141592653589793,
        2.5e-17, 6.02214076e23, 123456789.25, -9.999999999e9,
    };
    std::stringstream out;
    CsvWriter writer(out);
    writer.header({"v", "i", "u"});
    for (double v : values) {
        writer.beginRow();
        writer.cell(v);
        writer.cell(static_cast<std::int64_t>(-42));
        writer.cell(static_cast<std::uint64_t>(1) << 63);
        writer.endRow();
    }
    const auto rows = parseCsv(out.str());
    ASSERT_EQ(rows.size(), 1 + values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const auto &row = rows[1 + i];
        ASSERT_EQ(row.size(), 3u);
        const double parsed = std::stod(row[0]);
        if (values[i] == 0.0)
            EXPECT_EQ(parsed, 0.0);
        else
            EXPECT_NEAR(parsed / values[i], 1.0, 1e-11);
        EXPECT_EQ(row[1], "-42");
        EXPECT_EQ(row[2], "9223372036854775808");
    }
}

TEST(CsvRoundTripTest, EmptyAndHeaderOnlyOutputs)
{
    std::stringstream out;
    CsvWriter writer(out);
    EXPECT_EQ(writer.rows(), 0u);
    writer.header({"only"});
    const auto rows = parseCsv(out.str());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"only"}));
}

} // namespace
} // namespace capo::support
