/**
 * @file
 * Tests for the tracing subsystem: TraceSink semantics, the metrics
 * registry, Chrome trace-event export (including a real JSON parse
 * with span-nesting and monotonicity checks), and an end-to-end run
 * cross-checking trace spans against the GcEventLog.
 */

#include <gtest/gtest.h>

#include "testutil/json.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "metrics/export.hh"
#include "runtime/gc_event_log.hh"
#include "trace/chrome_export.hh"
#include "trace/metrics_registry.hh"
#include "trace/sink.hh"
#include "workloads/registry.hh"

namespace capo::trace {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

// ---------------------------------------------------------------------
// TraceSink semantics.

TEST(TraceSinkTest, RecordsTypedEventsOnTracks)
{
    TraceSink sink;
    const auto track = sink.registerTrack("t");
    sink.beginSpan(track, Category::Sim, "work", 10.0);
    sink.instant(track, Category::Sim, "tick", 15.0, 7.0);
    sink.counter(track, Category::Metrics, "bytes", 18.0, 42.0);
    sink.endSpan(track, Category::Sim, "work", 20.0);

    const auto events = sink.events(track);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, EventKind::SpanBegin);
    EXPECT_EQ(events[1].kind, EventKind::Instant);
    EXPECT_DOUBLE_EQ(events[1].value, 7.0);
    EXPECT_EQ(events[2].kind, EventKind::Counter);
    EXPECT_DOUBLE_EQ(events[2].value, 42.0);
    EXPECT_EQ(events[3].kind, EventKind::SpanEnd);
    EXPECT_DOUBLE_EQ(events[3].ts, 20.0);
    EXPECT_EQ(sink.eventCount(), 4u);
    EXPECT_EQ(sink.droppedEvents(), 0u);
}

TEST(TraceSinkTest, CategoryFilterDropsDisabledEvents)
{
    TraceSink::Options options;
    options.categories = static_cast<CategoryMask>(Category::Gc);
    TraceSink sink(options);
    EXPECT_TRUE(sink.wants(Category::Gc));
    EXPECT_FALSE(sink.wants(Category::Sim));
    EXPECT_FALSE(sink.wants(Category::Metrics));

    const auto track = sink.registerTrack("t");
    sink.beginSpan(track, Category::Sim, "run", 1.0);
    sink.counter(track, Category::Metrics, "x", 2.0, 3.0);
    sink.beginSpan(track, Category::Gc, "young", 4.0);
    EXPECT_EQ(sink.events(track).size(), 1u);
    EXPECT_STREQ(sink.events(track)[0].name, "young");
    // Filtered events are not "dropped": they were never wanted.
    EXPECT_EQ(sink.droppedEvents(), 0u);
}

TEST(TraceSinkTest, RingOverwritesOldestAndCountsDrops)
{
    TraceSink::Options options;
    options.track_capacity = 4;
    TraceSink sink(options);
    const auto track = sink.registerTrack("t");
    for (int i = 0; i < 10; ++i)
        sink.instant(track, Category::Sim, "e", static_cast<double>(i));

    const auto events = sink.events(track);
    ASSERT_EQ(events.size(), 4u);
    // Oldest retained first: 6, 7, 8, 9.
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(events[i].ts, 6.0 + i);
    EXPECT_EQ(sink.droppedEvents(), 6u);
}

TEST(TraceSinkTest, RegisterTrackIsIdempotent)
{
    TraceSink sink;
    const auto a = sink.registerTrack("gc");
    const auto b = sink.registerTrack("harness");
    EXPECT_NE(a, b);
    EXPECT_EQ(sink.registerTrack("gc"), a);
    EXPECT_EQ(sink.trackCount(), 2u);
    EXPECT_EQ(sink.trackName(a), "gc");
}

TEST(TraceSinkTest, InternNameReturnsStablePointer)
{
    TraceSink sink;
    const char *a = sink.internName("g1 @ 2x");
    // Force reallocation pressure; deque storage must not move names.
    for (int i = 0; i < 100; ++i)
        sink.internName("filler-" + std::to_string(i));
    const char *b = sink.internName("g1 @ 2x");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "g1 @ 2x");
}

TEST(TraceSinkTest, TimeBaseShiftsRelativeEmittersOnly)
{
    TraceSink sink;
    const auto track = sink.registerTrack("t");
    sink.setTimeBase(1000.0);
    sink.beginSpan(track, Category::Sim, "a", 5.0);
    sink.beginSpanAbs(track, Category::Harness, "b", 5.0);
    const auto events = sink.events(track);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].ts, 1005.0);
    EXPECT_DOUBLE_EQ(events[1].ts, 5.0);
    EXPECT_DOUBLE_EQ(sink.timeBase(), 1000.0);
}

TEST(TraceSinkTest, ParseCategoriesSpecs)
{
    EXPECT_EQ(parseCategories("all"), kAllCategories);
    EXPECT_EQ(parseCategories("none"), 0u);
    EXPECT_EQ(parseCategories("gc"),
              static_cast<CategoryMask>(Category::Gc));
    EXPECT_EQ(parseCategories(" sim , harness "),
              static_cast<CategoryMask>(Category::Sim) |
                  static_cast<CategoryMask>(Category::Harness));
    EXPECT_EQ(parseCategories("gc,gc"),
              static_cast<CategoryMask>(Category::Gc));
}

// ---------------------------------------------------------------------
// MetricsRegistry.

TEST(MetricsRegistryTest, CountersGaugesAndLookup)
{
    MetricsRegistry registry;
    registry.counter("allocs").add(3.0);
    registry.counter("allocs").increment();
    registry.gauge("occupancy").set(0.5);

    EXPECT_DOUBLE_EQ(registry.counter("allocs").value(), 4.0);
    EXPECT_DOUBLE_EQ(registry.gauge("occupancy").value(), 0.5);
    EXPECT_TRUE(registry.gauge("occupancy").everSet());
    EXPECT_TRUE(registry.contains("allocs"));
    EXPECT_FALSE(registry.contains("missing"));
    EXPECT_EQ(registry.size(), 2u);

    // Registration order is preserved for reports.
    ASSERT_EQ(registry.entries().size(), 2u);
    EXPECT_EQ(registry.entries()[0].name, "allocs");
    EXPECT_EQ(registry.entries()[1].name, "occupancy");
}

TEST(MetricsRegistryTest, HistogramSummaryStatistics)
{
    MetricsRegistry registry;
    auto &h = registry.histogram("pause");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.record(v);

    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_NEAR(h.stddev(), 1.118, 1e-3);
    EXPECT_DOUBLE_EQ(h.last(), 4.0);
}

TEST(MetricsRegistryTest, HistogramQuantilesAreBucketApproximate)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    // Log-bucketed: ~ +/- 15 % accuracy is the contract.
    EXPECT_NEAR(h.quantile(0.5), 500.0, 500.0 * 0.16);
    EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.16);
    EXPECT_NEAR(h.quantile(1.0), 1000.0, 1000.0 * 0.16);
    EXPECT_LE(h.quantile(1.0), 1000.0);
    // Quantiles clamp into the observed range.
    EXPECT_GE(h.quantile(0.0), 1.0);
}

TEST(MetricsRegistryTest, HistogramHandlesZeroAndEmpty)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

// ---------------------------------------------------------------------
// Chrome export.

TEST(ChromeExportTest, EmitsParsableJsonWithThreadNames)
{
    TraceSink sink;
    const auto a = sink.registerTrack("alpha");
    const auto b = sink.registerTrack("beta \"quoted\"");
    sink.beginSpan(a, Category::Sim, "run", 2000.0);
    sink.endSpan(a, Category::Sim, "run", 5000.0);
    sink.instant(b, Category::Gc, "trigger", 3000.0, 9.0);
    sink.counter(b, Category::Metrics, "heap", 4000.0, 123.0);

    std::stringstream out;
    const auto written = writeChromeTrace(sink, out);
    EXPECT_EQ(written, 4u);

    JsonValue root;
    ASSERT_TRUE(JsonParser(out.str()).parse(root));
    ASSERT_EQ(root.type, JsonValue::Type::Object);
    EXPECT_EQ(root.at("displayTimeUnit").text, "ms");

    const auto &events = root.at("traceEvents");
    ASSERT_EQ(events.type, JsonValue::Type::Array);
    // 2 metadata + 4 events.
    ASSERT_EQ(events.items.size(), 6u);

    std::map<double, std::string> names_by_tid;
    for (const auto &e : events.items) {
        if (e.at("ph").text == "M") {
            EXPECT_EQ(e.at("name").text, "thread_name");
            names_by_tid[e.at("tid").number] =
                e.at("args").at("name").text;
        }
    }
    ASSERT_EQ(names_by_tid.size(), 2u);
    EXPECT_EQ(names_by_tid[1], "alpha");
    EXPECT_EQ(names_by_tid[2], "beta \"quoted\"");

    // Events are sorted by timestamp (microseconds).
    std::vector<double> stamps;
    for (const auto &e : events.items) {
        if (e.at("ph").text != "M")
            stamps.push_back(e.at("ts").number);
    }
    ASSERT_EQ(stamps.size(), 4u);
    EXPECT_DOUBLE_EQ(stamps.front(), 2.0);  // 2000 ns -> 2 us
    for (std::size_t i = 1; i < stamps.size(); ++i)
        EXPECT_GE(stamps[i], stamps[i - 1]);

    // Payloads survive the round trip.
    for (const auto &e : events.items) {
        if (e.at("ph").text == "C") {
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 123.0);
        }
        if (e.at("ph").text == "i") {
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 9.0);
        }
    }
}

TEST(ChromeExportTest, EmptySinkStillProducesValidJson)
{
    TraceSink sink;
    std::stringstream out;
    EXPECT_EQ(writeChromeTrace(sink, out), 0u);
    JsonValue root;
    ASSERT_TRUE(JsonParser(out.str()).parse(root));
    EXPECT_EQ(root.at("traceEvents").items.size(), 0u);
}

// ---------------------------------------------------------------------
// GcEventLog forwarding (regression: pause spans == PauseRecords).

TEST(GcEventLogTraceTest, PhaseWindowsForwardAsSpans)
{
    TraceSink sink;
    const auto pauses = sink.registerTrack("gc");
    const auto conc = sink.registerTrack("gc/concurrent");
    runtime::GcEventLog log;
    log.attachTrace(&sink, pauses, conc);

    const auto young = log.beginPhase(100.0, runtime::GcPhase::YoungPause);
    log.endPhase(young, 150.0, 40.0);
    const auto mark = log.beginPhase(200.0, runtime::GcPhase::Concurrent);
    const auto full = log.beginPhase(300.0, runtime::GcPhase::FullPause);
    log.endPhase(full, 400.0, 90.0);
    log.endPhase(mark, 500.0, 10.0);
    log.traceInstant("trigger-young", 90.0, 1234.0);

    const auto stw = sink.events(pauses);
    ASSERT_EQ(stw.size(), 5u);  // 2 pauses * B/E + instant
    EXPECT_STREQ(stw[0].name, "young");
    EXPECT_EQ(stw[0].kind, EventKind::SpanBegin);
    EXPECT_DOUBLE_EQ(stw[0].ts, 100.0);
    EXPECT_STREQ(stw[1].name, "young");
    EXPECT_EQ(stw[1].kind, EventKind::SpanEnd);
    EXPECT_DOUBLE_EQ(stw[1].ts, 150.0);
    EXPECT_STREQ(stw[2].name, "full");
    EXPECT_STREQ(stw[4].name, "trigger-young");
    EXPECT_DOUBLE_EQ(stw[4].value, 1234.0);

    const auto concurrent = sink.events(conc);
    ASSERT_EQ(concurrent.size(), 2u);
    EXPECT_STREQ(concurrent[0].name, "concurrent");
    EXPECT_DOUBLE_EQ(concurrent[0].ts, 200.0);
    EXPECT_DOUBLE_EQ(concurrent[1].ts, 500.0);

    // Spans agree 1:1 with the log's own records.
    const auto &phases = log.phases();
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_DOUBLE_EQ(phases[0].begin, 100.0);
    EXPECT_DOUBLE_EQ(phases[0].end, 150.0);
}

TEST(GcEventLogTraceTest, DetachedLogEmitsNothing)
{
    runtime::GcEventLog log;
    log.traceInstant("trigger-young", 10.0);  // must not crash
    const auto t = log.beginPhase(1.0, runtime::GcPhase::YoungPause);
    log.endPhase(t, 2.0, 0.5);
    EXPECT_EQ(log.phases().size(), 1u);
}

// ---------------------------------------------------------------------
// End to end: a real benchmark run produces a coherent trace.

struct Span
{
    std::string name;
    double begin = 0.0;
    double end = 0.0;
};

/** Extract completed spans from one track's B/E event stream,
 *  asserting stack discipline as it goes. */
std::vector<Span>
extractSpans(const std::vector<TraceEvent> &events)
{
    std::vector<Span> spans;
    std::vector<Span> stack;
    for (const auto &e : events) {
        if (e.kind == EventKind::SpanBegin) {
            stack.push_back(Span{e.name, e.ts, 0.0});
        } else if (e.kind == EventKind::SpanEnd) {
            EXPECT_FALSE(stack.empty()) << "unmatched end: " << e.name;
            if (stack.empty())
                continue;
            EXPECT_EQ(stack.back().name, e.name) << "interleaved spans";
            Span s = stack.back();
            stack.pop_back();
            s.end = e.ts;
            EXPECT_LE(s.begin, s.end);
            spans.push_back(s);
        }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed spans remain";
    return spans;
}

class TracedRunTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        harness::ExperimentOptions options;
        options.iterations = 3;
        options.invocations = 1;
        options.time_limit_sec = 300;
        options.trace = &sink_;
        options.metrics = &registry_;
        options.metrics_interval_ms = 5.0;

        harness::Runner runner(options);
        const auto &fop = workloads::byName("fop");
        run_ = runner.runOnce(fop, gc::Algorithm::G1,
                              2.0 * fop.gc.gmd_mb, 0);
        ASSERT_TRUE(run_.usable());
    }

    TrackId
    trackByName(const std::string &name)
    {
        for (TrackId t = 0; t < sink_.trackCount(); ++t) {
            if (sink_.trackName(t) == name)
                return t;
        }
        ADD_FAILURE() << "no track named " << name;
        return 0;
    }

    bool
    hasTrackPrefixed(const std::string &prefix)
    {
        for (TrackId t = 0; t < sink_.trackCount(); ++t) {
            if (sink_.trackName(t).rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    }

    TraceSink sink_;
    MetricsRegistry registry_;
    runtime::ExecutionResult run_;
};

TEST_F(TracedRunTest, RegistersExpectedTracks)
{
    EXPECT_TRUE(hasTrackPrefixed("mutator#"));
    EXPECT_TRUE(hasTrackPrefixed("gc"));
    trackByName("gc");
    trackByName("gc/concurrent");
    trackByName("mutator");
    trackByName("harness");
    trackByName("counters");
    trackByName("pacing");
}

TEST_F(TracedRunTest, PauseSpansMatchGcEventLog)
{
    const auto spans = extractSpans(sink_.events(trackByName("gc")));
    std::vector<const runtime::PauseRecord *> stw;
    for (const auto &p : run_.log.phases()) {
        if (runtime::isStwPhase(p.phase))
            stw.push_back(&p);
    }
    ASSERT_GT(stw.size(), 0u) << "fop/G1 at 2x should collect";
    ASSERT_EQ(spans.size(), stw.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].name, runtime::phaseName(stw[i]->phase));
        EXPECT_DOUBLE_EQ(spans[i].begin, stw[i]->begin);
        EXPECT_DOUBLE_EQ(spans[i].end, stw[i]->end);
    }
}

TEST_F(TracedRunTest, MutatorTrackCarriesIterationSpans)
{
    const auto spans =
        extractSpans(sink_.events(trackByName("mutator")));
    std::size_t iterations = 0;
    for (const auto &s : spans)
        iterations += s.name == "iteration";
    EXPECT_EQ(iterations, run_.iterations.size());
}

TEST_F(TracedRunTest, HarnessTrackCarriesInvocationSpan)
{
    const auto spans =
        extractSpans(sink_.events(trackByName("harness")));
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_NE(std::string(spans[0].name).find("fop/G1"),
              std::string::npos);
    EXPECT_DOUBLE_EQ(spans[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(spans[0].end, run_.wall);
    // The next invocation would start after a gap.
    EXPECT_GT(sink_.timeBase(), run_.wall);
}

TEST_F(TracedRunTest, CountersSampleHeapOccupancy)
{
    const auto events = sink_.events(trackByName("counters"));
    std::size_t occupancy_samples = 0;
    for (const auto &e : events) {
        ASSERT_EQ(e.kind, EventKind::Counter);
        if (std::string(e.name) == "heap.occupied_bytes") {
            ++occupancy_samples;
            EXPECT_GE(e.value, 0.0);
        }
    }
    EXPECT_GT(occupancy_samples, 10u);

    // The same samples fed the registry histograms.
    ASSERT_TRUE(registry_.contains("heap.occupied_bytes"));
    const auto &h = registry_.histogram("heap.occupied_bytes");
    EXPECT_EQ(h.count(), occupancy_samples);
    EXPECT_GT(h.max(), 0.0);
    ASSERT_TRUE(registry_.contains("agents.runnable"));
    ASSERT_TRUE(registry_.contains("gc.cpu_ns"));
}

TEST_F(TracedRunTest, ExportedJsonIsValidNestedAndMonotonic)
{
    std::stringstream out;
    const auto written = writeChromeTrace(sink_, out);
    EXPECT_GT(written, 0u);

    JsonValue root;
    ASSERT_TRUE(JsonParser(out.str()).parse(root));
    const auto &events = root.at("traceEvents");
    ASSERT_EQ(events.type, JsonValue::Type::Array);

    double last_ts = -1.0;
    std::map<double, std::vector<std::string>> stacks;
    for (const auto &e : events.items) {
        const std::string ph = e.at("ph").text;
        if (ph == "M")
            continue;
        const double ts = e.at("ts").number;
        EXPECT_GE(ts, last_ts) << "timestamps must be monotonic";
        last_ts = ts;
        auto &stack = stacks[e.at("tid").number];
        if (ph == "B") {
            stack.push_back(e.at("name").text);
        } else if (ph == "E") {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(stack.back(), e.at("name").text);
            stack.pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST_F(TracedRunTest, MetricsCsvSummarizesRegistry)
{
    std::stringstream out;
    const auto rows = metrics::exportMetricsCsv(registry_, out);
    EXPECT_EQ(rows, registry_.size());
    const std::string text = out.str();
    EXPECT_EQ(text.find("name,kind,count,min,mean,max,stddev,last"), 0u);
    EXPECT_NE(text.find("heap.occupied_bytes,histogram"),
              std::string::npos);
}

TEST(TracedRunOverheadTest, DisabledTracingChangesNothing)
{
    harness::ExperimentOptions options;
    options.iterations = 2;
    options.invocations = 1;
    options.time_limit_sec = 300;

    harness::Runner runner(options);
    const auto &fop = workloads::byName("fop");
    const auto plain = runner.runOnce(fop, gc::Algorithm::Serial,
                                      2.0 * fop.gc.gmd_mb, 0);

    TraceSink sink;
    auto traced_options = options;
    traced_options.trace = &sink;
    traced_options.metrics_interval_ms = 0.0;  // no sampler agent
    harness::Runner traced_runner(traced_options);
    const auto traced = traced_runner.runOnce(
        fop, gc::Algorithm::Serial, 2.0 * fop.gc.gmd_mb, 0);

    // Tracing observes; it must not perturb the simulation.
    ASSERT_TRUE(plain.usable());
    ASSERT_TRUE(traced.usable());
    EXPECT_DOUBLE_EQ(plain.wall, traced.wall);
    EXPECT_DOUBLE_EQ(plain.cpu, traced.cpu);
    EXPECT_EQ(plain.log.pauseCount(), traced.log.pauseCount());
    EXPECT_GT(sink.eventCount(), 0u);
}

} // namespace
} // namespace capo::trace
