/**
 * @file
 * Unit and property tests for the heap substrate.
 */

#include <gtest/gtest.h>

#include "heap/heap_space.hh"
#include "heap/live_set.hh"

namespace capo::heap {
namespace {

TEST(LiveSetTest, SteadyStateEqualsBase)
{
    LiveSetModel m;
    m.base_bytes = 100.0;
    m.buildup_fraction = 0.0;
    EXPECT_DOUBLE_EQ(m.liveAt(0.0), 100.0);
    EXPECT_DOUBLE_EQ(m.liveAt(5.0), 100.0);
}

TEST(LiveSetTest, BuildupRampsFromStartupFraction)
{
    LiveSetModel m;
    m.base_bytes = 100.0;
    m.buildup_fraction = 0.5;
    m.startup_fraction = 0.2;
    EXPECT_DOUBLE_EQ(m.liveAt(0.0), 20.0);
    EXPECT_DOUBLE_EQ(m.liveAt(0.25), 60.0);
    EXPECT_DOUBLE_EQ(m.liveAt(0.5), 100.0);
    EXPECT_DOUBLE_EQ(m.liveAt(2.0), 100.0);
}

TEST(LiveSetTest, LeakGrowsLinearly)
{
    LiveSetModel m;
    m.base_bytes = 100.0;
    m.buildup_fraction = 0.0;
    m.leak_bytes_per_iteration = 10.0;
    EXPECT_DOUBLE_EQ(m.liveAt(1.0), 110.0);
    EXPECT_DOUBLE_EQ(m.liveAt(10.0), 200.0);
}

TEST(LiveSetTest, PeakIsAtEnd)
{
    LiveSetModel m;
    m.base_bytes = 100.0;
    m.buildup_fraction = 0.5;
    m.leak_bytes_per_iteration = 5.0;
    EXPECT_GE(m.peak(10.0), m.liveAt(10.0) - 1e-9);
}

HeapSpace::Config
config(double max_bytes, double survivor = 0.1, double footprint = 1.0)
{
    HeapSpace::Config c;
    c.max_bytes = max_bytes;
    c.survivor_fraction = survivor;
    c.footprint_factor = footprint;
    return c;
}

LiveSetModel
flatLive(double bytes)
{
    LiveSetModel m;
    m.base_bytes = bytes;
    m.buildup_fraction = 0.0;
    m.startup_fraction = 1.0;
    return m;
}

TEST(HeapSpaceTest, FillAccumulatesFresh)
{
    HeapSpace heap(config(1000.0), flatLive(100.0));
    EXPECT_DOUBLE_EQ(heap.occupied(), 100.0);
    heap.fill(50.0);
    heap.fill(25.0);
    EXPECT_DOUBLE_EQ(heap.fresh(), 75.0);
    EXPECT_DOUBLE_EQ(heap.occupied(), 175.0);
    EXPECT_DOUBLE_EQ(heap.freeBytes(), 825.0);
    EXPECT_DOUBLE_EQ(heap.totalAllocated(), 75.0);
}

TEST(HeapSpaceTest, FootprintShrinksCapacity)
{
    HeapSpace heap(config(1000.0, 0.1, 1.25), flatLive(100.0));
    EXPECT_DOUBLE_EQ(heap.capacity(), 800.0);
}

TEST(HeapSpaceTest, YoungCollectionPromotesSurvivors)
{
    HeapSpace heap(config(1000.0, 0.1), flatLive(100.0));
    heap.fill(200.0);
    const auto c = heap.collectYoung();
    EXPECT_DOUBLE_EQ(c.survivors, 20.0);
    EXPECT_DOUBLE_EQ(c.fresh_processed, 200.0);
    EXPECT_DOUBLE_EQ(c.reclaimed, 180.0);
    EXPECT_DOUBLE_EQ(heap.fresh(), 0.0);
    EXPECT_DOUBLE_EQ(heap.oldDebris(), 20.0);
    EXPECT_DOUBLE_EQ(c.post_gc, 120.0);
}

TEST(HeapSpaceTest, TransientDecayBoundsDebris)
{
    auto cfg = config(10000.0, 0.1);
    cfg.transient_decay = 0.5;
    cfg.promotion_fraction = 0.0;  // isolate the decay mechanism
    HeapSpace heap(cfg, flatLive(100.0));
    // Steady state: debris converges to survivors / decay = 2x.
    for (int i = 0; i < 50; ++i) {
        heap.fill(200.0);
        heap.collectYoung();
    }
    EXPECT_NEAR(heap.oldDebris(), 40.0, 1.0);
}

TEST(HeapSpaceTest, PromotedGarbageNeedsOldCollection)
{
    auto cfg = config(100000.0, 0.1);
    cfg.transient_decay = 1.0;      // transients die instantly
    cfg.promotion_fraction = 0.25;  // a quarter of survivors promote
    HeapSpace heap(cfg, flatLive(100.0));
    for (int i = 0; i < 10; ++i) {
        heap.fill(400.0);
        heap.collectYoung();
    }
    // Young collections never reclaim promoted data (10 x 40 x 0.25
    // = 100), plus the last cycle's not-yet-decayed transients (30).
    EXPECT_NEAR(heap.oldDebris(), 130.0, 1e-6);
    // A mixed collection reclaims the requested share of it...
    heap.collectMixed(0.5);
    EXPECT_NEAR(heap.oldDebris(), 65.0, 1e-6);
    // ...and a full collection clears the rest.
    heap.collectFull();
    EXPECT_NEAR(heap.oldDebris(), 0.0, 1e-6);
}

TEST(HeapSpaceTest, FullCollectionClearsDebris)
{
    HeapSpace heap(config(1000.0, 0.1), flatLive(100.0));
    heap.fill(200.0);
    heap.collectYoung();
    heap.fill(100.0);
    const auto c = heap.collectFull();
    EXPECT_DOUBLE_EQ(heap.oldDebris(), 10.0);  // fresh survivors only
    EXPECT_DOUBLE_EQ(c.post_gc, 110.0);
    EXPECT_GT(c.traced, 100.0);  // traces the live set
}

TEST(HeapSpaceTest, MixedCollectionReclaimsDebrisFraction)
{
    auto cfg = config(10000.0, 0.1);
    cfg.transient_decay = 0.0;  // isolate mixed-collection behaviour
    HeapSpace heap(cfg, flatLive(100.0));
    heap.fill(400.0);
    heap.collectYoung();  // debris 40
    heap.fill(100.0);
    const auto c = heap.collectMixed(0.5);
    EXPECT_NEAR(heap.oldDebris(), 40.0 * 0.5 + 10.0, 1e-9);
    EXPECT_NEAR(c.reclaimed, 90.0 + 20.0, 1e-9);
}

TEST(HeapSpaceTest, PredictMatchesFullCollection)
{
    HeapSpace heap(config(1000.0, 0.2), flatLive(100.0));
    heap.fill(300.0);
    const double predicted = heap.predictPostFullGc();
    const auto c = heap.collectFull();
    EXPECT_DOUBLE_EQ(predicted, c.post_gc);
}

TEST(HeapSpaceTest, SurvivorScalingRaisesSurvivalForSmallNurseries)
{
    auto cfg = config(100000.0, 0.05);
    cfg.survivor_reference_bytes = 10000.0;
    HeapSpace heap(cfg, flatLive(100.0));
    heap.fill(2500.0);  // quarter of the reference: scale = 2
    EXPECT_NEAR(heap.effectiveSurvivorFraction(), 0.10, 1e-12);

    HeapSpace big(cfg, flatLive(100.0));
    big.fill(40000.0);  // 4x reference: scale = 0.5 -> clamp 0.6
    EXPECT_NEAR(big.effectiveSurvivorFraction(), 0.05 * 0.6, 1e-12);
}

TEST(HeapSpaceTest, ProgressTracksLiveModel)
{
    LiveSetModel m;
    m.base_bytes = 100.0;
    m.buildup_fraction = 1.0;
    m.startup_fraction = 0.5;
    HeapSpace heap(config(1000.0), m);
    EXPECT_DOUBLE_EQ(heap.live(), 50.0);
    heap.setProgress(0.5);
    EXPECT_DOUBLE_EQ(heap.live(), 75.0);
    heap.setProgress(3.0);
    EXPECT_DOUBLE_EQ(heap.live(), 100.0);
}

// Property sweep: conservation across arbitrary collection sequences.
class HeapConservation
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(HeapConservation, OccupancyNeverNegativeAndBounded)
{
    const auto [survivor, fill_step] = GetParam();
    auto cfg = config(100000.0, survivor);
    cfg.survivor_reference_bytes = 5000.0;
    HeapSpace heap(cfg, flatLive(1000.0));

    for (int round = 0; round < 200; ++round) {
        if (heap.canFit(fill_step))
            heap.fill(fill_step);
        switch (round % 4) {
          case 0:
          case 1:
            heap.collectYoung();
            break;
          case 2:
            heap.collectMixed(0.3);
            break;
          case 3:
            heap.collectFull();
            break;
        }
        ASSERT_GE(heap.fresh(), 0.0);
        ASSERT_GE(heap.oldDebris(), -1e-9);
        ASSERT_LE(heap.occupied(), heap.capacity() + 1e-6);
        ASSERT_GE(heap.freeBytes(), -1e-6);
    }
    EXPECT_EQ(heap.collections(), 200u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeapConservation,
    ::testing::Values(std::make_tuple(0.01, 500.0),
                      std::make_tuple(0.05, 2000.0),
                      std::make_tuple(0.10, 8000.0),
                      std::make_tuple(0.30, 20000.0),
                      std::make_tuple(0.0, 1000.0)));

} // namespace
} // namespace capo::heap
