/**
 * @file
 * Tests for the serve fleet tier: the backend registry's selection
 * strategies and health hysteresis, the consistent-hash ring's
 * stickiness and remap bound, sweep-spec expansion, and the end-to-end
 * router property the fleet exists for — a multi-backend sweep's
 * merged results are byte-identical to a single-backend fault-free
 * run, under every strategy, at --jobs 1 and 4, while backends die
 * mid-sweep (conn_io), refuse with RETRY_LATER, or flap between
 * DEGRADED and HEALTHY.
 *
 * Backends are in-process ExperimentServers over Unix sockets with
 * test-local experiment registrations, so the suite needs no spawned
 * processes and no capo_experiments link; scripts/fleet_smoke.sh
 * covers the real-process kill -9 path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/seed.hh"
#include "fault/fault.hh"
#include "harness/sweep_spec.hh"
#include "report/experiment.hh"
#include "report/table.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "support/flags.hh"
#include "trace/metrics_registry.hh"

using namespace capo;
using namespace capo::serve;

namespace {

// ---------------------------------------------------------------------
// Test-local experiments.

/** Deterministic typed table from flags — the payload whose bytes
 *  must survive any amount of failover unchanged. */
const report::RegisterExperiment kEcho{[] {
    report::Experiment e;
    e.name = "fleet_test_echo";
    e.title = "fleet test echo";
    e.description = "test-local: deterministic table from flags";
    e.add_flags = [](support::Flags &flags) {
        flags.addInt("rows", 3, "rows to emit");
        flags.addDouble("scale", 0.1, "value scale");
    };
    e.run = [](report::ExperimentContext &context) {
        const auto rows = context.flags.getInt("rows");
        const double scale = context.flags.getDouble("scale");
        auto &table = context.store.table(
            "echo", report::Schema{{"i", report::Type::Int},
                                   {"x", report::Type::Double},
                                   {"tag", report::Type::String}});
        for (std::int64_t i = 0; i < rows; ++i)
            table.addRow({report::Value::integer(i),
                          report::Value::dbl(scale * (i + 1) / 7.0),
                          report::Value::str("r" + std::to_string(i))});
        return 0;
    };
    return e;
}()};

/** Occupies a backend's worker for a controllable time. */
const report::RegisterExperiment kSlow{[] {
    report::Experiment e;
    e.name = "fleet_test_slow";
    e.title = "fleet test slow";
    e.description = "test-local: sleeps before emitting one row";
    e.add_flags = [](support::Flags &flags) {
        flags.addInt("sleep-ms", 50, "how long to hold the worker");
        flags.addInt("id", 0, "distinct cache identity");
    };
    e.run = [](report::ExperimentContext &context) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            context.flags.getInt("sleep-ms")));
        auto &table = context.store.table(
            "slow", report::Schema{{"id", report::Type::Int}});
        table.addRow(
            {report::Value::integer(context.flags.getInt("id"))});
        return 0;
    };
    return e;
}()};

// ---------------------------------------------------------------------
// Helpers.

std::string
tempDir(const std::string &name)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) /
                     ("capo_fleet_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** A started backend over a Unix socket in its own temp dir. */
struct TestServer
{
    TestServer(ServerOptions options, const std::string &name)
        : dir(tempDir(name))
    {
        options.socket_path = dir + "/serve.sock";
        server = std::make_unique<ExperimentServer>(std::move(options));
        std::string error;
        EXPECT_TRUE(server->start(error)) << error;
    }

    ~TestServer()
    {
        server->drain();
        server->join();
    }

    std::string socketPath() const { return dir + "/serve.sock"; }

    std::string dir;
    std::unique_ptr<ExperimentServer> server;
};

using Fleet = std::vector<std::unique_ptr<TestServer>>;

std::vector<BackendEndpoint>
endpointsOf(const Fleet &fleet)
{
    std::vector<BackendEndpoint> endpoints;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        BackendEndpoint endpoint;
        endpoint.id = "b" + std::to_string(i);
        endpoint.socket_path = fleet[i]->socketPath();
        endpoints.push_back(std::move(endpoint));
    }
    return endpoints;
}

RouterOptions
fleetOptions(const Fleet &fleet, Strategy strategy, std::size_t jobs)
{
    RouterOptions options;
    options.backends = endpointsOf(fleet);
    options.strategy = strategy;
    options.jobs = jobs;
    options.batch_size = 4;
    options.cell_retries = 12;
    options.retry_backoff_ms = 1.0;
    return options;
}

/** 12 distinct echo configurations — a small sweep grid. */
std::vector<FleetCell>
sweepCells(int count = 12)
{
    static const char *kScales[] = {"0.125", "0.3", "0.7", "1.5"};
    std::vector<FleetCell> cells;
    for (int i = 0; i < count; ++i) {
        FleetCell cell;
        cell.experiment = "fleet_test_echo";
        cell.args = {"--rows", std::to_string(1 + i % 5), "--scale",
                     kScales[i % 4]};
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::string
mergedBytes(const std::vector<FleetCellResult> &results)
{
    report::ResultStore merged;
    std::string error;
    EXPECT_TRUE(mergeCellStores(results, merged, error)) << error;
    return encodeStore(merged);
}

/** The reference everything must match: one backend, no faults. */
std::string
referenceBytes(const std::vector<FleetCell> &cells,
               const std::string &name)
{
    ServerOptions options;
    options.workers = 2;
    Fleet fleet;
    fleet.push_back(std::make_unique<TestServer>(options, name));
    FleetRouter router(
        fleetOptions(fleet, Strategy::RoundRobin, 1));
    const auto results = router.runCells(cells);
    for (const auto &result : results)
        EXPECT_EQ(result.response.status, Status::Ok);
    return mergedBytes(results);
}

constexpr Strategy kStrategies[] = {Strategy::RoundRobin,
                                    Strategy::LeastConnections,
                                    Strategy::ConsistentHash};
constexpr std::size_t kJobs[] = {1, 4};

std::vector<BackendEndpoint>
namedEndpoints(int count)
{
    std::vector<BackendEndpoint> endpoints;
    for (int i = 0; i < count; ++i) {
        BackendEndpoint endpoint;
        endpoint.id = "b" + std::to_string(i);
        endpoint.socket_path = "/nonexistent";
        endpoints.push_back(std::move(endpoint));
    }
    return endpoints;
}

// ---------------------------------------------------------------------
// Sweep-spec expansion.

TEST(SweepSpecTest, ParsesListsAndRanges)
{
    harness::SweepAxis axis;
    std::string error;
    ASSERT_TRUE(harness::parseSweepAxis("scale=0.1,0.2,0.7", axis,
                                        error))
        << error;
    EXPECT_EQ(axis.flag, "scale");
    EXPECT_EQ(axis.values,
              (std::vector<std::string>{"0.1", "0.2", "0.7"}));

    ASSERT_TRUE(harness::parseSweepAxis("--seed=1:4", axis, error))
        << error;
    EXPECT_EQ(axis.flag, "seed");
    EXPECT_EQ(axis.values,
              (std::vector<std::string>{"1", "2", "3", "4"}));

    ASSERT_TRUE(harness::parseSweepAxis("n=0:10:5", axis, error));
    EXPECT_EQ(axis.values,
              (std::vector<std::string>{"0", "5", "10"}));

    EXPECT_FALSE(harness::parseSweepAxis("noequals", axis, error));
    EXPECT_FALSE(harness::parseSweepAxis("flag=", axis, error));
    EXPECT_FALSE(harness::parseSweepAxis("flag=1,,2", axis, error));
    EXPECT_FALSE(harness::parseSweepAxis("flag=4:1", axis, error));
    EXPECT_FALSE(harness::parseSweepAxis("flag=1:8:0", axis, error));
    EXPECT_FALSE(harness::parseSweepAxis("flag=1:x", axis, error));
}

TEST(SweepSpecTest, ExpandsCrossProductLastAxisFastest)
{
    harness::SweepAxis a, b;
    std::string error;
    ASSERT_TRUE(harness::parseSweepAxis("rows=1:2", a, error));
    ASSERT_TRUE(harness::parseSweepAxis("scale=0.5,2.0", b, error));

    const auto cells = harness::expandSweepCells(
        {a, b}, {"--invocations", "1"});
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0],
              (std::vector<std::string>{"--invocations", "1",
                                        "--rows", "1", "--scale",
                                        "0.5"}));
    EXPECT_EQ(cells[1],
              (std::vector<std::string>{"--invocations", "1",
                                        "--rows", "1", "--scale",
                                        "2.0"}));
    EXPECT_EQ(cells[3],
              (std::vector<std::string>{"--invocations", "1",
                                        "--rows", "2", "--scale",
                                        "2.0"}));

    // No axes: exactly one cell, the common args.
    const auto base = harness::expandSweepCells(
        {}, {"--rows", "3"});
    ASSERT_EQ(base.size(), 1u);
    EXPECT_EQ(base[0], (std::vector<std::string>{"--rows", "3"}));
}

// ---------------------------------------------------------------------
// Registry: strategies, health hysteresis.

TEST(BackendRegistryTest, StrategyNamesRoundTrip)
{
    for (Strategy strategy : kStrategies) {
        Strategy back;
        ASSERT_TRUE(parseStrategy(strategyName(strategy), back));
        EXPECT_EQ(back, strategy);
    }
    Strategy strategy;
    EXPECT_TRUE(parseStrategy("rr", strategy));
    EXPECT_EQ(strategy, Strategy::RoundRobin);
    EXPECT_FALSE(parseStrategy("random", strategy));
}

TEST(BackendRegistryTest, RoundRobinSpreadsEvenly)
{
    BackendRegistry registry(namedEndpoints(3),
                             Strategy::RoundRobin);
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 12; ++i) {
        std::size_t index = 99;
        ASSERT_TRUE(registry.pick(exec::mix64(i), index));
        ++counts[index];
    }
    EXPECT_EQ(counts, (std::vector<int>{4, 4, 4}));
}

TEST(BackendRegistryTest, LeastConnectionsFollowsInFlight)
{
    BackendRegistry registry(namedEndpoints(3),
                             Strategy::LeastConnections);
    registry.beginDispatch(0, 3);
    registry.beginDispatch(1, 1);
    std::size_t index = 99;
    ASSERT_TRUE(registry.pick(0, index));
    EXPECT_EQ(index, 2u); // zero in flight
    registry.beginDispatch(2, 2);
    ASSERT_TRUE(registry.pick(0, index));
    EXPECT_EQ(index, 1u); // one in flight
    registry.endDispatch(0, 3, true);
    ASSERT_TRUE(registry.pick(0, index));
    EXPECT_EQ(index, 0u); // back to zero; ties break low
}

TEST(BackendRegistryTest, HysteresisStepsDownFastAndRecoversSlowly)
{
    BackendRegistry registry(namedEndpoints(2),
                             Strategy::RoundRobin);
    // One failure: DEGRADED (degraded_after = 1).
    registry.reportProbe(1, false);
    EXPECT_EQ(registry.health(1), BackendHealth::Degraded);
    // Third consecutive failure: UNHEALTHY (unhealthy_after = 3).
    registry.reportProbe(1, false);
    registry.reportProbe(1, false);
    EXPECT_EQ(registry.health(1), BackendHealth::Unhealthy);

    // One success is not recovery (recover_after = 2)...
    registry.reportProbe(1, true);
    EXPECT_EQ(registry.health(1), BackendHealth::Unhealthy);
    // ...and a failure in between resets the streak.
    registry.reportProbe(1, false);
    registry.reportProbe(1, true);
    EXPECT_EQ(registry.health(1), BackendHealth::Unhealthy);

    // Two consecutive successes climb ONE level, not straight home.
    registry.reportProbe(1, true);
    EXPECT_EQ(registry.health(1), BackendHealth::Degraded);
    registry.reportProbe(1, true);
    registry.reportProbe(1, true);
    EXPECT_EQ(registry.health(1), BackendHealth::Healthy);
}

TEST(BackendRegistryTest, SelectionNeverPicksUnhealthy)
{
    BackendRegistry registry(namedEndpoints(3),
                             Strategy::RoundRobin);
    for (int i = 0; i < 3; ++i)
        registry.reportProbe(1, false); // b1 UNHEALTHY
    std::size_t index;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(registry.pick(exec::mix64(i), index));
        EXPECT_NE(index, 1u);
    }

    // Degrade b0: selection falls back to it only once b2 (the last
    // healthy backend) is excluded.
    registry.reportProbe(0, false);
    ASSERT_TRUE(registry.pick(0, index));
    EXPECT_EQ(index, 2u);
    ASSERT_TRUE(registry.pickExcluding(0, 2, index));
    EXPECT_EQ(index, 0u);

    // All UNHEALTHY: nothing to pick.
    for (int i = 0; i < 3; ++i) {
        registry.reportProbe(0, false);
        registry.reportProbe(2, false);
    }
    EXPECT_FALSE(registry.pick(0, index));
}

TEST(BackendRegistryTest, StatsTableReportsPerBackendRows)
{
    BackendRegistry registry(namedEndpoints(2),
                             Strategy::LeastConnections);
    registry.beginDispatch(0, 4);
    registry.endDispatch(0, 4, true);
    registry.reportProbe(1, false);

    const auto stats = registry.snapshot();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].id, "b0");
    EXPECT_EQ(stats[0].dispatched, 4u);
    EXPECT_EQ(stats[0].successes, 1u);
    EXPECT_EQ(stats[1].failures, 1u);
    EXPECT_EQ(stats[1].probes, 1u);

    const auto table = registry.statsTable();
    ASSERT_EQ(table.rows().size(), 2u);
    EXPECT_EQ(table.rows()[0][0].asString(), "b0");
    EXPECT_EQ(table.rows()[0][1].asString(), "HEALTHY");
    EXPECT_EQ(table.rows()[1][1].asString(), "DEGRADED");
}

// ---------------------------------------------------------------------
// Consistent hashing: stickiness and the remap bound.

TEST(ConsistentHashTest, IdenticalKeysLandOnTheSameBackend)
{
    BackendRegistry registry(namedEndpoints(5),
                             Strategy::ConsistentHash);
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t key = exec::mix64(0xabc0 + i);
        std::size_t first, again;
        ASSERT_TRUE(registry.pick(key, first));
        ASSERT_TRUE(registry.pick(key, again));
        EXPECT_EQ(first, again);
        EXPECT_EQ(registry.ringOwner(key), first);
    }
}

TEST(ConsistentHashTest, RemovingOneBackendRemapsOnlyItsShare)
{
    constexpr int kBackends = 10;
    constexpr int kKeys = 4096;
    const auto full_endpoints = namedEndpoints(kBackends);
    auto reduced_endpoints = full_endpoints;
    reduced_endpoints.erase(reduced_endpoints.begin() + 3); // drop b3

    BackendRegistry full(full_endpoints, Strategy::ConsistentHash);
    BackendRegistry reduced(reduced_endpoints,
                            Strategy::ConsistentHash);

    int owned_by_removed = 0;
    for (int i = 0; i < kKeys; ++i) {
        const std::uint64_t key = exec::mix64(0x51ee7 + i);
        const auto &before =
            full_endpoints[full.ringOwner(key)].id;
        const auto &after =
            reduced_endpoints[reduced.ringOwner(key)].id;
        if (before == "b3") {
            // The removed backend's keys must move...
            ++owned_by_removed;
            EXPECT_NE(after, "b3");
        } else {
            // ...and nobody else's may: ring points depend only on
            // their own backend id, so survivors keep their ranges.
            EXPECT_EQ(after, before) << "key " << i;
        }
    }
    // The remapped fraction is the removed backend's share: about
    // 1/N, and certainly no more than 1/N plus virtual-node slack.
    const double fraction =
        static_cast<double>(owned_by_removed) / kKeys;
    EXPECT_GT(fraction, 0.02);
    EXPECT_LT(fraction, 1.0 / kBackends + 0.08);
}

TEST(ConsistentHashTest, RingSkipsIneligibleBackends)
{
    BackendRegistry registry(namedEndpoints(4),
                             Strategy::ConsistentHash);
    const std::uint64_t key = exec::mix64(0x777);
    std::size_t owner;
    ASSERT_TRUE(registry.pick(key, owner));

    // Quarantine the owner: the key walks clockwise to a live
    // backend, deterministically.
    for (int i = 0; i < 3; ++i)
        registry.reportProbe(owner, false);
    std::size_t fallback;
    ASSERT_TRUE(registry.pick(key, fallback));
    EXPECT_NE(fallback, owner);
    std::size_t fallback_again;
    ASSERT_TRUE(registry.pick(key, fallback_again));
    EXPECT_EQ(fallback_again, fallback);

    // Recovery restores the original owner (stickiness is about the
    // ring, not about accidents of history).
    for (int i = 0; i < 4; ++i)
        registry.reportProbe(owner, true);
    std::size_t recovered;
    ASSERT_TRUE(registry.pick(key, recovered));
    EXPECT_EQ(recovered, owner);
}

// ---------------------------------------------------------------------
// End-to-end: merged results are byte-identical to a single-backend
// fault-free run, whatever the strategy, parallelism, or fault load.

TEST(FleetRouterTest, HealthyFleetMatchesSingleBackendBitwise)
{
    const auto cells = sweepCells();
    const auto reference = referenceBytes(cells, "healthy_ref");

    int variant = 0;
    for (Strategy strategy : kStrategies) {
        for (std::size_t jobs : kJobs) {
            Fleet fleet;
            for (int b = 0; b < 3; ++b) {
                ServerOptions options;
                options.workers = 2;
                fleet.push_back(std::make_unique<TestServer>(
                    options, "healthy_" + std::to_string(variant) +
                                 "_b" + std::to_string(b)));
            }
            FleetRouter router(
                fleetOptions(fleet, strategy, jobs));
            const auto results = router.runCells(cells);
            for (const auto &result : results)
                EXPECT_EQ(result.response.status, Status::Ok);
            EXPECT_EQ(mergedBytes(results), reference)
                << strategyName(strategy) << " jobs " << jobs;
            ++variant;
        }
    }
}

TEST(FleetRouterTest, BackendKilledMidSweepFailsOverBitwise)
{
    const auto cells = sweepCells();
    const auto reference = referenceBytes(cells, "killed_ref");

    int variant = 0;
    for (Strategy strategy : kStrategies) {
        for (std::size_t jobs : kJobs) {
            // b1's connections die with certainty: every batch sent
            // to it is dropped mid-exchange, the in-process stand-in
            // for kill -9 (which scripts/fleet_smoke.sh does for
            // real). Each backend seeds its plan independently.
            Fleet fleet;
            for (int b = 0; b < 3; ++b) {
                ServerOptions options;
                options.workers = 2;
                if (b == 1) {
                    options.faults.seed = fault::backendSeed(
                        99, "b" + std::to_string(b));
                    options.faults.setRate(fault::Site::ConnIo, 1.0);
                    options.conn_retries = 0;
                }
                fleet.push_back(std::make_unique<TestServer>(
                    options, "killed_" + std::to_string(variant) +
                                 "_b" + std::to_string(b)));
            }
            FleetRouter router(
                fleetOptions(fleet, strategy, jobs));
            const auto results = router.runCells(cells);

            int failovers = 0;
            for (const auto &result : results) {
                EXPECT_EQ(result.response.status, Status::Ok);
                EXPECT_NE(result.backend, "b1");
                failovers += result.failed_over ? 1 : 0;
            }
            EXPECT_EQ(mergedBytes(results), reference)
                << strategyName(strategy) << " jobs " << jobs;

            const auto stats = router.registry().snapshot();
            if (strategy != Strategy::ConsistentHash) {
                // Rotation and least-connections provably hand b1
                // cells in round one; they all must have moved.
                EXPECT_GT(failovers, 0);
                EXPECT_GT(stats[1].failures, 0u);
                EXPECT_NE(router.registry().health(1),
                          BackendHealth::Healthy);
            }
            ++variant;
        }
    }
}

TEST(FleetRouterTest, RetryLaterRefusalsFailOverBitwise)
{
    const auto cells = sweepCells(8);
    const auto reference = referenceBytes(cells, "retry_ref");

    int variant = 0;
    for (Strategy strategy : kStrategies) {
        Fleet fleet;
        for (int b = 0; b < 3; ++b) {
            ServerOptions options;
            if (b == 1) {
                // One worker, one queue slot: once both are taken,
                // every cell answered RETRY_LATER.
                options.workers = 1;
                options.queue_capacity = 1;
            } else {
                options.workers = 2;
            }
            fleet.push_back(std::make_unique<TestServer>(
                options, "retry_" + std::to_string(variant) + "_b" +
                             std::to_string(b)));
        }

        // Pre-warm b0 and b2: in-process servers share one global
        // run mutex (stdout capture is process-wide), so while the
        // occupying run below sleeps, no other backend could
        // *execute* either. With their caches warm, b0/b2 answer
        // instantly from replay and only b1's refusals are in play.
        // Caches are per-server, so each survivor gets the full
        // sweep, not a share of it — the fleet run's partition
        // must hit no matter which backend a cell lands on.
        for (int b : {0, 2}) {
            RouterOptions warm;
            warm.backends = {endpointsOf(fleet)[b]};
            FleetRouter warmer(std::move(warm));
            for (const auto &result : warmer.runCells(cells))
                ASSERT_EQ(result.response.status, Status::Ok);
        }

        // Occupy b1's worker and queue for longer than the sweep
        // takes: a slow run holds the worker, a second sits queued,
        // so every batch cell sent to b1 answers RETRY_LATER.
        std::string error;
        const int fd_a =
            connectUnix(fleet[1]->socketPath(), error);
        ASSERT_GE(fd_a, 0) << error;
        Request slow;
        slow.kind = RequestKind::Run;
        slow.experiment = "fleet_test_slow";
        slow.args = {"--sleep-ms", "1200", "--id", "1"};
        slow.stream = 9001;
        ASSERT_TRUE(sendFrame(fd_a, encodeRequest(slow)));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const int fd_b =
            connectUnix(fleet[1]->socketPath(), error);
        ASSERT_GE(fd_b, 0) << error;
        slow.args = {"--sleep-ms", "10", "--id", "2"};
        slow.stream = 9002;
        ASSERT_TRUE(sendFrame(fd_b, encodeRequest(slow)));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

        for (std::size_t jobs : kJobs) {
            FleetRouter router(
                fleetOptions(fleet, strategy, jobs));
            const auto results = router.runCells(cells);
            for (const auto &result : results)
                EXPECT_EQ(result.response.status, Status::Ok);
            EXPECT_EQ(mergedBytes(results), reference)
                << strategyName(strategy) << " jobs " << jobs;
            if (strategy != Strategy::ConsistentHash) {
                EXPECT_GT(router.registry().snapshot()[1].failures,
                          0u);
            }
            // The occupied backend must have refused, server-side.
            EXPECT_GT(fleet[1]->server->healthSnapshot().retry_later,
                      0u)
                << strategyName(strategy) << " jobs " << jobs;
        }

        // Drain the occupying requests so the backends exit clean.
        std::string payload;
        Response response;
        ASSERT_TRUE(recvFrame(fd_a, payload, error)) << error;
        ASSERT_TRUE(decodeResponse(payload, response, error));
        EXPECT_EQ(response.status, Status::Ok);
        ASSERT_TRUE(recvFrame(fd_b, payload, error)) << error;
        ASSERT_TRUE(decodeResponse(payload, response, error));
        EXPECT_EQ(response.status, Status::Ok);
        closeSocket(fd_a);
        closeSocket(fd_b);
        ++variant;
    }
}

TEST(FleetRouterTest, FlappingBackendDegradesRecoversAndStaysBitwise)
{
    const auto cells = sweepCells();
    const auto reference = referenceBytes(cells, "flap_ref");

    int variant = 0;
    for (Strategy strategy : kStrategies) {
        for (std::size_t jobs : kJobs) {
            // b1 drops a bit under half its connections: it flaps
            // between HEALTHY and DEGRADED while the sweep runs.
            Fleet fleet;
            for (int b = 0; b < 3; ++b) {
                ServerOptions options;
                options.workers = 2;
                if (b == 1) {
                    options.faults.seed = fault::backendSeed(
                        7, "b" + std::to_string(b));
                    options.faults.setRate(fault::Site::ConnIo,
                                           0.45);
                    options.conn_retries = 0;
                }
                fleet.push_back(std::make_unique<TestServer>(
                    options, "flap_" + std::to_string(variant) +
                                 "_b" + std::to_string(b)));
            }
            FleetRouter router(
                fleetOptions(fleet, strategy, jobs));
            const auto results = router.runCells(cells);
            for (const auto &result : results)
                EXPECT_EQ(result.response.status, Status::Ok);
            EXPECT_EQ(mergedBytes(results), reference)
                << strategyName(strategy) << " jobs " << jobs;

            // Probes eventually string two successes together and
            // walk b1 back to HEALTHY, one level at a time.
            for (int i = 0; i < 300 && router.registry().health(1) !=
                                           BackendHealth::Healthy;
                 ++i)
                router.probeAll();
            EXPECT_EQ(router.registry().health(1),
                      BackendHealth::Healthy)
                << strategyName(strategy) << " jobs " << jobs;
            ++variant;
        }
    }
}

TEST(FleetRouterTest, UnreachableBackendFailsOver)
{
    const auto cells = sweepCells(6);
    const auto reference = referenceBytes(cells, "unreach_ref");

    Fleet fleet;
    for (int b = 0; b < 2; ++b) {
        ServerOptions options;
        fleet.push_back(std::make_unique<TestServer>(
            options, "unreach_b" + std::to_string(b)));
    }
    auto options = fleetOptions(fleet, Strategy::RoundRobin, 2);
    BackendEndpoint ghost;
    ghost.id = "b2";
    ghost.socket_path = fleet[0]->dir + "/nobody-listens.sock";
    options.backends.push_back(ghost);

    trace::MetricsRegistry metrics;
    options.metrics = &metrics;
    FleetRouter router(std::move(options));
    const auto results = router.runCells(cells);
    for (const auto &result : results) {
        EXPECT_EQ(result.response.status, Status::Ok);
        EXPECT_NE(result.backend, "b2");
    }
    EXPECT_EQ(mergedBytes(results), reference);

    EXPECT_EQ(metrics.counter("fleet.cells.completed").value(),
              static_cast<double>(cells.size()));
    EXPECT_GT(metrics.counter("fleet.failovers").value(), 0.0);
    EXPECT_GT(router.registry().snapshot()[2].failures, 0u);
}

TEST(FleetRouterTest, AllBackendsDeadFailsCellsCleanly)
{
    const auto dir = tempDir("all_dead");
    RouterOptions options;
    for (int b = 0; b < 2; ++b) {
        BackendEndpoint ghost;
        ghost.id = "b" + std::to_string(b);
        ghost.socket_path = dir + "/ghost" + std::to_string(b) +
                            ".sock";
        options.backends.push_back(ghost);
    }
    options.cell_retries = 2;
    options.retry_backoff_ms = 0.5;
    options.jobs = 2;
    FleetRouter router(std::move(options));

    const auto results = router.runCells(sweepCells(3));
    ASSERT_EQ(results.size(), 3u);
    for (const auto &result : results)
        EXPECT_EQ(result.response.status, Status::Error);

    report::ResultStore merged;
    std::string error;
    EXPECT_FALSE(mergeCellStores(results, merged, error));
    EXPECT_FALSE(error.empty());
}

TEST(FleetRouterTest, ConsistentHashStickinessReplaysFromCache)
{
    const auto cells = sweepCells();
    Fleet fleet;
    for (int b = 0; b < 3; ++b) {
        ServerOptions options;
        options.workers = 2;
        fleet.push_back(std::make_unique<TestServer>(
            options, "sticky_b" + std::to_string(b)));
    }
    FleetRouter router(
        fleetOptions(fleet, Strategy::ConsistentHash, 4));

    const auto first = router.runCells(cells);
    for (const auto &result : first) {
        ASSERT_EQ(result.response.status, Status::Ok);
        EXPECT_FALSE(result.response.cached);
    }

    // The same sweep again: every cell hashes to the same backend,
    // whose cache replays the exact bytes without re-running.
    const auto second = router.runCells(cells);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < second.size(); ++i) {
        ASSERT_EQ(second[i].response.status, Status::Ok);
        EXPECT_TRUE(second[i].response.cached) << "cell " << i;
        EXPECT_EQ(second[i].backend, first[i].backend);
        EXPECT_EQ(second[i].response.body, first[i].response.body);
    }
    EXPECT_EQ(mergedBytes(second), mergedBytes(first));
}

TEST(FleetRouterTest, MergeRejectsSchemaDisagreement)
{
    // Two hand-built cell results whose "echo" schemas disagree.
    report::ResultStore store_a;
    store_a.table("t", report::Schema{{"x", report::Type::Int}})
        .addRow({report::Value::integer(1)});
    report::ResultStore store_b;
    store_b.table("t", report::Schema{{"x", report::Type::Double}})
        .addRow({report::Value::dbl(1.0)});

    std::vector<FleetCellResult> results(2);
    results[0].response.status = Status::Ok;
    results[0].response.body = encodeStore(store_a);
    results[1].response.status = Status::Ok;
    results[1].response.body = encodeStore(store_b);

    report::ResultStore merged;
    std::string error;
    EXPECT_FALSE(mergeCellStores(results, merged, error));
    EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(FleetRouterTest, MergedStoreCarriesCellColumnInCellOrder)
{
    Fleet fleet;
    ServerOptions options;
    fleet.push_back(std::make_unique<TestServer>(options, "merge"));
    FleetRouter router(
        fleetOptions(fleet, Strategy::RoundRobin, 1));

    const auto cells = sweepCells(3);
    const auto results = router.runCells(cells);
    report::ResultStore merged;
    std::string error;
    ASSERT_TRUE(mergeCellStores(results, merged, error)) << error;

    const auto *table = merged.find("echo");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->schema().columns().size(), 4u);
    EXPECT_EQ(table->schema().columns()[0].name, "cell");

    // Rows arrive grouped by cell, cells in sweep order.
    std::int64_t last_cell = -1;
    for (const auto &row : table->rows()) {
        EXPECT_GE(row[0].asInt(), last_cell);
        last_cell = row[0].asInt();
    }
    EXPECT_EQ(last_cell, 2);
}

} // namespace
