/**
 * @file
 * Tests for the experiment server: wire-protocol codecs (bit-exact
 * doubles, binary-safe bodies), the content-addressed cache key and
 * its exclusions, cache warm-load with torn-file skip, and end-to-end
 * server behavior over a Unix socket — bitwise equality between
 * served and direct registry runs, cache-hit replay, queue-full
 * RETRY_LATER, deadline expiry, graceful drain, and conn_io fault
 * determinism across worker counts.
 *
 * The experiments used here are test-local registrations (this
 * binary's own TU) so the suite stays fast and needs no
 * capo_experiments link.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/seed.hh"
#include "fault/fault.hh"
#include "report/artifact.hh"
#include "report/experiment.hh"
#include "report/table.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "support/flags.hh"

using namespace capo;
using namespace capo::serve;

namespace {

// ---------------------------------------------------------------------
// Test-local experiments.

/** Deterministic typed table from flags: the serving path must return
 *  it bit-identically to a direct runRegistered call. */
const report::RegisterExperiment kEcho{[] {
    report::Experiment e;
    e.name = "serve_test_echo";
    e.title = "serve test echo";
    e.description = "test-local: deterministic table from flags";
    e.add_flags = [](support::Flags &flags) {
        flags.addInt("rows", 3, "rows to emit");
        flags.addDouble("scale", 0.1, "value scale");
    };
    e.run = [](report::ExperimentContext &context) {
        const auto rows = context.flags.getInt("rows");
        const double scale = context.flags.getDouble("scale");
        auto &table = context.store.table(
            "echo", report::Schema{{"i", report::Type::Int},
                                   {"x", report::Type::Double},
                                   {"tag", report::Type::String}});
        for (std::int64_t i = 0; i < rows; ++i) {
            // Non-representable decimals so bit-identity is a real
            // assertion, not a round-decimal accident.
            table.addRow({report::Value::integer(i),
                          report::Value::dbl(scale * (i + 1) / 7.0),
                          report::Value::str("r" + std::to_string(i))});
        }
        return 0;
    };
    return e;
}()};

/** Occupies the (single) worker for a controllable time. */
const report::RegisterExperiment kSlow{[] {
    report::Experiment e;
    e.name = "serve_test_slow";
    e.title = "serve test slow";
    e.description = "test-local: sleeps before emitting one row";
    e.add_flags = [](support::Flags &flags) {
        flags.addInt("sleep-ms", 50, "how long to hold the worker");
        flags.addInt("id", 0, "distinct cache identity");
    };
    e.run = [](report::ExperimentContext &context) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            context.flags.getInt("sleep-ms")));
        auto &table = context.store.table(
            "slow", report::Schema{{"id", report::Type::Int}});
        table.addRow(
            {report::Value::integer(context.flags.getInt("id"))});
        return 0;
    };
    return e;
}()};

/** Always fails: the daemon must answer Error, not die. */
const report::RegisterExperiment kFail{[] {
    report::Experiment e;
    e.name = "serve_test_fail";
    e.title = "serve test fail";
    e.description = "test-local: exits nonzero";
    e.run = [](report::ExperimentContext &) { return 3; };
    return e;
}()};

// ---------------------------------------------------------------------
// Helpers.

std::string
tempDir(const std::string &name)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) /
                     ("capo_serve_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** Body bytes of a direct (unserved) registry run — the reference the
 *  server's responses must match bitwise. */
std::string
directBody(const std::string &name,
           const std::vector<std::string> &args)
{
    const auto *experiment =
        report::ExperimentRegistry::instance().find(name);
    EXPECT_NE(experiment, nullptr);
    report::ArtifactSink sink(".", report::ArtifactSink::Mode::Discard);
    report::ResultStore store;
    EXPECT_EQ(report::runRegistered(*experiment, args, sink, store), 0);
    return encodeStore(store);
}

/** A started server over a Unix socket in its own temp dir. */
struct TestServer
{
    explicit TestServer(ServerOptions options,
                        const std::string &name)
        : dir(tempDir(name))
    {
        options.socket_path = dir + "/serve.sock";
        server = std::make_unique<ExperimentServer>(std::move(options));
        std::string error;
        EXPECT_TRUE(server->start(error)) << error;
    }

    ~TestServer()
    {
        server->drain();
        server->join();
    }

    std::string socketPath() const { return dir + "/serve.sock"; }

    std::string dir;
    std::unique_ptr<ExperimentServer> server;
};

/** Raw request/response over one fresh connection — no client retry
 *  discipline, so RETRY_LATER and friends surface unmodified. */
bool
rawRoundTrip(const std::string &socket_path, const Request &request,
             Response &response)
{
    std::string error;
    const int fd = connectUnix(socket_path, error);
    if (fd < 0)
        return false;
    bool ok = sendFrame(fd, encodeRequest(request));
    std::string payload;
    ok = ok && recvFrame(fd, payload, error);
    ok = ok && decodeResponse(payload, response, error);
    closeSocket(fd);
    return ok;
}

Request
runRequest(const std::string &experiment,
           const std::vector<std::string> &args, double deadline_ms,
           std::uint64_t stream, std::uint64_t sequence)
{
    Request request;
    request.kind = RequestKind::Run;
    request.experiment = experiment;
    request.args = args;
    request.deadline_ms = deadline_ms;
    request.stream = stream;
    request.sequence = sequence;
    return request;
}

double
healthStat(const Response &response, const std::string &stat)
{
    report::ResultStore store;
    std::string error;
    EXPECT_TRUE(decodeStore(response.body, store, error)) << error;
    const auto *table = store.find("health");
    EXPECT_NE(table, nullptr);
    for (const auto &row : table->rows())
        if (row[0].asString() == stat)
            return row[1].asDouble();
    ADD_FAILURE() << "health stat '" << stat << "' missing";
    return -1.0;
}

// ---------------------------------------------------------------------
// Framing tests: truncation is diagnosed, clean EOF stays silent.

/** recvFrame against hand-fed bytes over a socketpair, after the
 *  write side closes. */
std::pair<bool, std::string>
recvFrameAfterClose(const std::string &bytes)
{
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_EQ(::send(fds[1], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    ::close(fds[1]);
    std::string payload, error;
    const bool ok = recvFrame(fds[0], payload, error);
    ::close(fds[0]);
    return {ok, error};
}

TEST(ServeSocketTest, CleanCloseBeforeHeaderIsNotAnError)
{
    const auto [ok, error] = recvFrameAfterClose("");
    EXPECT_FALSE(ok);
    EXPECT_TRUE(error.empty()) << error;
}

TEST(ServeSocketTest, MidHeaderCloseReportsTruncatedFrame)
{
    // Two of the four length bytes, then the peer vanishes: that is
    // a torn exchange, not a polite goodbye, and the error must say
    // so — callers distinguish retryable truncation from clean EOF.
    const auto [ok, error] = recvFrameAfterClose(std::string(2, 'x'));
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("TRUNCATED_FRAME"), std::string::npos)
        << error;
    EXPECT_NE(error.find("mid-header"), std::string::npos) << error;
    EXPECT_NE(error.find("2/4"), std::string::npos) << error;
}

TEST(ServeSocketTest, MidFrameCloseReportsTruncatedFrame)
{
    char header[4];
    encodeFrameLength(100, header);
    const auto [ok, error] = recvFrameAfterClose(
        std::string(header, 4) + std::string(10, 'p'));
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("TRUNCATED_FRAME"), std::string::npos)
        << error;
    EXPECT_NE(error.find("mid-frame"), std::string::npos) << error;
    EXPECT_NE(error.find("10/100"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Protocol codec tests.

TEST(ServeProtocolTest, FrameLengthRoundTrips)
{
    for (std::uint32_t length :
         {0u, 1u, 255u, 256u, 65536u, (64u << 20) - 1}) {
        char bytes[4];
        encodeFrameLength(length, bytes);
        EXPECT_EQ(decodeFrameLength(bytes), length);
    }
}

TEST(ServeProtocolTest, RequestRoundTripsAllFields)
{
    Request request;
    request.kind = RequestKind::Run;
    request.experiment = "serve_test_echo";
    request.args = {"--rows", "5", "--scale", "0.3", "pos arg"};
    request.deadline_ms = 12.5;
    request.stream = 0xdeadbeefcafe1234ull;
    request.sequence = 42;
    request.attempt = 3;

    Request back;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), back, error))
        << error;
    EXPECT_EQ(back.kind, RequestKind::Run);
    EXPECT_EQ(back.experiment, request.experiment);
    EXPECT_EQ(back.args, request.args);
    EXPECT_EQ(back.deadline_ms, request.deadline_ms);
    EXPECT_EQ(back.stream, request.stream);
    EXPECT_EQ(back.sequence, request.sequence);
    EXPECT_EQ(back.attempt, request.attempt);

    for (auto kind : {RequestKind::Health, RequestKind::Shutdown}) {
        Request control;
        control.kind = kind;
        control.stream = 9;
        ASSERT_TRUE(
            decodeRequest(encodeRequest(control), back, error));
        EXPECT_EQ(back.kind, kind);
        EXPECT_EQ(back.stream, 9u);
    }
}

TEST(ServeProtocolTest, DecodeRejectsMalformedPayloads)
{
    Request request;
    std::string error;
    EXPECT_FALSE(decodeRequest("", request, error));
    EXPECT_FALSE(decodeRequest("garbage", request, error));
    EXPECT_FALSE(decodeRequest("capo-serve-rsp v1 OK 0", request,
                               error));
    Response response;
    EXPECT_FALSE(decodeResponse("", response, error));
    EXPECT_FALSE(decodeResponse("capo-serve-req v1 run", response,
                                error));
}

TEST(ServeProtocolTest, ResponseBodyIsBinarySafe)
{
    Response response;
    response.status = Status::Ok;
    response.cached = true;
    response.message = "hit";
    response.body = std::string("line1\nline2\twith tab\n") +
                    std::string(1, '\0') + "after-nul\nno trailing nl";

    Response back;
    std::string error;
    ASSERT_TRUE(decodeResponse(encodeResponse(response), back, error))
        << error;
    EXPECT_EQ(back.status, Status::Ok);
    EXPECT_TRUE(back.cached);
    EXPECT_EQ(back.message, "hit");
    EXPECT_EQ(back.body, response.body);
}

TEST(ServeProtocolTest, StoreCodecIsBitIdentical)
{
    report::ResultStore store;
    auto &table = store.table(
        "exotic", report::Schema{{"name", report::Type::String},
                                 {"x", report::Type::Double},
                                 {"n", report::Type::Int},
                                 {"u", report::Type::Uint},
                                 {"b", report::Type::Bool}});
    const double exotic[] = {0.1, -0.0, 5e-324, 1.7976931348623157e308,
                             3.141592653589793, 1.0 / 3.0};
    std::int64_t n = -1;
    for (double x : exotic) {
        table.addRow({report::Value::str("v" + std::to_string(n)),
                      report::Value::dbl(x), report::Value::integer(n),
                      report::Value::uinteger(0xffffffffffffffffull),
                      report::Value::boolean(n % 2 == 0)});
        n *= 3;
    }

    const std::string encoded = encodeStore(store);
    report::ResultStore back;
    std::string error;
    ASSERT_TRUE(decodeStore(encoded, back, error)) << error;
    const auto *decoded = back.find("exotic");
    ASSERT_NE(decoded, nullptr);
    EXPECT_TRUE(decoded->identical(table));
    // Re-encoding the decoded store reproduces the exact bytes — the
    // property cached replay relies on.
    EXPECT_EQ(encodeStore(back), encoded);
}

TEST(ServeProtocolTest, RequestKeyCoversResultsShapingFieldsOnly)
{
    const auto base = runRequest("serve_test_echo",
                                 {"--rows", "4"}, 0.0, 0, 0);
    const auto key = requestKey(base);

    // Scheduling identity is excluded, exactly like the journal hash
    // excludes --jobs: deadline, stream, sequence and attempt must
    // not move the key.
    auto scheduled = base;
    scheduled.deadline_ms = 250.0;
    scheduled.stream = 77;
    scheduled.sequence = 12;
    scheduled.attempt = 2;
    EXPECT_EQ(requestKey(scheduled), key);

    auto other_experiment = base;
    other_experiment.experiment = "serve_test_slow";
    EXPECT_NE(requestKey(other_experiment), key);

    auto other_args = base;
    other_args.args = {"--rows", "5"};
    EXPECT_NE(requestKey(other_args), key);

    // Arg order is part of the content address.
    auto reordered = base;
    reordered.args = {"4", "--rows"};
    EXPECT_NE(requestKey(reordered), key);

    EXPECT_EQ(cacheFileName(0x0123456789abcdefull),
              "0123456789abcdef.capores");
}

TEST(ServeProtocolTest, BatchRequestRoundTripsItsCells)
{
    Request batch;
    batch.kind = RequestKind::Batch;
    batch.stream = 0x1234;
    batch.deadline_ms = 80.0;
    for (int i = 0; i < 3; ++i) {
        Request cell = runRequest(
            "serve_test_echo",
            {"--rows", std::to_string(i + 1), "pos arg"}, 5.0,
            100 + static_cast<std::uint64_t>(i), 0);
        cell.attempt = i;
        batch.cells.push_back(std::move(cell));
    }

    Request back;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(batch), back, error))
        << error;
    EXPECT_EQ(back.kind, RequestKind::Batch);
    EXPECT_EQ(back.stream, batch.stream);
    ASSERT_EQ(back.cells.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(back.cells[i].experiment, "serve_test_echo");
        EXPECT_EQ(back.cells[i].args, batch.cells[i].args);
        EXPECT_EQ(back.cells[i].stream, batch.cells[i].stream);
        EXPECT_EQ(back.cells[i].attempt, batch.cells[i].attempt);
    }

    // A batch whose declared cell count disagrees with its embedded
    // cells is malformed, as is a truncated embedded cell.
    std::string encoded = encodeRequest(batch);
    EXPECT_FALSE(decodeRequest(
        encoded.substr(0, encoded.size() - 5), back, error));
}

TEST(ServeProtocolTest, BatchBodyRoundTripsBinaryParts)
{
    std::vector<Response> parts(3);
    parts[0].status = Status::Ok;
    parts[0].body = std::string("bin\0line\n\tbytes", 15);
    parts[1].status = Status::RetryLater;
    parts[1].message = "admission queue full";
    parts[2].status = Status::Error;
    parts[2].message = "exited with code 3";

    const std::string body = encodeBatchBody(parts);
    std::vector<Response> back;
    std::string error;
    ASSERT_TRUE(decodeBatchBody(body, back, error)) << error;
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].status, Status::Ok);
    EXPECT_EQ(back[0].body, parts[0].body);
    EXPECT_EQ(back[1].status, Status::RetryLater);
    EXPECT_EQ(back[1].message, parts[1].message);
    EXPECT_EQ(back[2].status, Status::Error);

    EXPECT_FALSE(decodeBatchBody("", back, error));
    EXPECT_FALSE(
        decodeBatchBody(body.substr(0, body.size() - 3), back,
                        error));
}

// ---------------------------------------------------------------------
// Cache tests.

TEST(ResultCacheTest, LookupInsertAndStats)
{
    ResultCache cache;
    std::string payload;
    EXPECT_FALSE(cache.lookup(1, payload));
    cache.insert(1, "alpha");
    cache.insert(2, "beta");
    // First bytes are authoritative: re-insert is a no-op.
    cache.insert(1, "overwrite-attempt");
    ASSERT_TRUE(cache.lookup(1, payload));
    EXPECT_EQ(payload, "alpha");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.insertions(), 2u);
    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(ResultCacheTest, EvictsOldestPastCapacity)
{
    ResultCache cache(nullptr, "cache", 2);
    cache.insert(1, "a");
    cache.insert(2, "b");
    cache.insert(3, "c");
    EXPECT_EQ(cache.entryCount(), 2u);
    std::string payload;
    EXPECT_FALSE(cache.lookup(1, payload));
    EXPECT_TRUE(cache.lookup(3, payload));
}

TEST(ResultCacheTest, WarmLoadsDiskAndSkipsTornFiles)
{
    const auto dir = tempDir("cache_warm");
    {
        report::ArtifactSink sink(dir);
        ResultCache cache(&sink, "cache");
        cache.insert(0x11, "payload-one\nwith lines\n");
        cache.insert(0x22, std::string("binary\0bytes", 12));
    }

    // A torn write: header promises more bytes than the file holds.
    {
        std::ofstream torn(dir + "/cache/" + cacheFileName(0x33),
                           std::ios::binary);
        torn << "capo-result v1 0000000000000033 100\nshort";
    }
    // Alien junk with the right extension.
    {
        std::ofstream junk(dir + "/cache/junk.capores",
                           std::ios::binary);
        junk << "not a cache file";
    }

    report::ArtifactSink sink(dir);
    ResultCache cache(&sink, "cache");
    EXPECT_EQ(cache.loadFromDisk(), 2u);
    EXPECT_EQ(cache.loaded(), 2u);
    std::string payload;
    ASSERT_TRUE(cache.lookup(0x11, payload));
    EXPECT_EQ(payload, "payload-one\nwith lines\n");
    ASSERT_TRUE(cache.lookup(0x22, payload));
    EXPECT_EQ(payload, std::string("binary\0bytes", 12));
    EXPECT_FALSE(cache.lookup(0x33, payload));
}

TEST(ResultCacheTest, LookupRefreshesRecencyUnderEntryCap)
{
    ResultCache cache(nullptr, "cache", 2);
    cache.insert(1, "a");
    cache.insert(2, "b");
    // Touch 1: now 2 is the least recently used and must go first.
    std::string payload;
    ASSERT_TRUE(cache.lookup(1, payload));
    cache.insert(3, "c");
    EXPECT_FALSE(cache.lookup(2, payload));
    ASSERT_TRUE(cache.lookup(1, payload));
    EXPECT_EQ(payload, "a");
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCacheTest, ByteCapEvictsLruAndTracksBytes)
{
    ResultCache cache(nullptr, "cache", 0, 10);
    cache.insert(1, "aaaa");
    cache.insert(2, "bbbb");
    EXPECT_EQ(cache.byteCount(), 8u);
    std::string payload;
    ASSERT_TRUE(cache.lookup(1, payload)); // refresh 1
    cache.insert(3, "cccc");               // 12 > 10: evict 2
    EXPECT_FALSE(cache.lookup(2, payload));
    ASSERT_TRUE(cache.lookup(1, payload));
    ASSERT_TRUE(cache.lookup(3, payload));
    EXPECT_EQ(cache.byteCount(), 8u);
    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCacheTest, OversizeEntryIsKeptNeverEvictedToEmpty)
{
    // A single entry larger than the byte cap must survive: a cache
    // that evicted its only entry would thrash forever.
    ResultCache cache(nullptr, "cache", 0, 4);
    cache.insert(1, "twelve-bytes");
    std::string payload;
    ASSERT_TRUE(cache.lookup(1, payload));
    EXPECT_EQ(cache.evictions(), 0u);
    // The next insert displaces it — LRU still applies between two.
    cache.insert(2, "x");
    EXPECT_FALSE(cache.lookup(1, payload));
    ASSERT_TRUE(cache.lookup(2, payload));
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCacheTest, EvictionUnlinksDiskFilesTornSurvivorSkipped)
{
    const auto dir = tempDir("cache_evict");
    {
        report::ArtifactSink sink(dir);
        ResultCache cache(&sink, "cache", 2);
        cache.insert(0x11, "one");
        cache.insert(0x22, "two");
        std::string payload;
        ASSERT_TRUE(cache.lookup(0x11, payload)); // 0x22 becomes LRU
        cache.insert(0x33, "three");              // evicts 0x22
        // The evicted entry's disk file is unlinked, not orphaned.
        EXPECT_FALSE(std::filesystem::exists(
            dir + "/cache/" + cacheFileName(0x22)));
        EXPECT_TRUE(std::filesystem::exists(
            dir + "/cache/" + cacheFileName(0x11)));
    }

    // Tear one survivor on disk: a fresh warm load takes the intact
    // entry, skips the torn one, and never resurrects the evicted
    // key.
    {
        std::ofstream torn(dir + "/cache/" + cacheFileName(0x33),
                           std::ios::binary | std::ios::trunc);
        torn << "capo-result v1 0000000000000033 999\nnope";
    }
    report::ArtifactSink sink(dir);
    ResultCache cache(&sink, "cache", 2);
    EXPECT_EQ(cache.loadFromDisk(), 1u);
    std::string payload;
    ASSERT_TRUE(cache.lookup(0x11, payload));
    EXPECT_EQ(payload, "one");
    EXPECT_FALSE(cache.lookup(0x22, payload));
    EXPECT_FALSE(cache.lookup(0x33, payload));
}

TEST(ResultCacheTest, WarmLoadAppliesCapsWithEviction)
{
    const auto dir = tempDir("cache_warm_cap");
    {
        report::ArtifactSink sink(dir);
        ResultCache cache(&sink, "cache");
        cache.insert(0x01, "alpha");
        cache.insert(0x02, "beta");
        cache.insert(0x03, "gamma");
    }
    // Reload under a 2-entry cap: later names count as more recent,
    // so the lowest key is evicted — and its file unlinked.
    report::ArtifactSink sink(dir);
    ResultCache cache(&sink, "cache", 2);
    cache.loadFromDisk();
    EXPECT_EQ(cache.entryCount(), 2u);
    std::string payload;
    EXPECT_FALSE(cache.lookup(0x01, payload));
    ASSERT_TRUE(cache.lookup(0x02, payload));
    ASSERT_TRUE(cache.lookup(0x03, payload));
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/cache/" + cacheFileName(0x01)));
}

TEST(ResultCacheTest, ConcurrentLookupsNeverSeeTornPayloads)
{
    // A replay in flight must never observe a half-evicted entry:
    // lookups copy the payload out under the lock. Hammer one hot
    // key while inserts churn the rest of a tiny cache past its
    // caps.
    constexpr std::uint64_t kHotKey = 0xffffull;
    ResultCache cache(nullptr, "cache", 4);
    const std::string hot(4096, 'h');
    cache.insert(kHotKey, hot);

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        std::string payload;
        while (!stop.load()) {
            if (cache.lookup(kHotKey, payload) && payload != hot)
                torn.fetch_add(1);
        }
    });
    for (std::uint64_t i = 0; i < 2000; ++i) {
        cache.insert(i + 1, std::string(64, 'x'));
        std::string payload;
        cache.lookup(kHotKey, payload); // keep the hot key recent
    }
    stop.store(true);
    reader.join();
    EXPECT_EQ(torn.load(), 0);
}

// ---------------------------------------------------------------------
// End-to-end server tests (Unix socket, test-local experiments).

TEST(ServeServerTest, ServedRunMatchesDirectRegistryBitwise)
{
    const std::vector<std::string> args = {"--rows", "4", "--scale",
                                           "0.3"};
    const std::string reference = directBody("serve_test_echo", args);

    ServerOptions options;
    options.workers = 2;
    TestServer harness(options, "bitwise");

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);
    Response response;
    std::string error;
    ASSERT_TRUE(client.run("serve_test_echo", args, 0.0, response,
                           error))
        << error;
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_FALSE(response.cached);
    EXPECT_EQ(response.body, reference);

    // Same content address again: replayed from cache, byte for byte.
    ASSERT_TRUE(client.run("serve_test_echo", args, 0.0, response,
                           error))
        << error;
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_TRUE(response.cached);
    EXPECT_EQ(response.body, reference);

    const auto snapshot = harness.server->healthSnapshot();
    EXPECT_EQ(snapshot.cache_hits, 1u);
    EXPECT_EQ(snapshot.completed, 2u);
}

TEST(ServeServerTest, BatchRunsEveryCellAndMatchesDirectBitwise)
{
    ServerOptions options;
    options.workers = 2;
    TestServer harness(options, "batch");

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);

    std::vector<Request> cells;
    for (int i = 0; i < 3; ++i)
        cells.push_back(runRequest(
            "serve_test_echo", {"--rows", std::to_string(i + 2)},
            0.0, 50 + static_cast<std::uint64_t>(i), 0));
    // One bad apple: a per-cell error is a part answer, not a batch
    // failure.
    cells.push_back(
        runRequest("no_such_experiment", {}, 0.0, 60, 0));

    Response response;
    std::string error;
    ASSERT_TRUE(client.runBatch(cells, response, error)) << error;
    ASSERT_EQ(response.status, Status::Ok);

    std::vector<Response> parts;
    ASSERT_TRUE(decodeBatchBody(response.body, parts, error))
        << error;
    ASSERT_EQ(parts.size(), 4u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(parts[i].status, Status::Ok);
        EXPECT_EQ(parts[i].body,
                  directBody("serve_test_echo",
                             {"--rows", std::to_string(i + 2)}));
    }
    EXPECT_EQ(parts[3].status, Status::Error);
    EXPECT_NE(parts[3].message.find("unknown experiment"),
              std::string::npos);

    // Each batch cell is a real run with a real cache identity: a
    // repeat replays every part from cache.
    ASSERT_TRUE(client.runBatch(cells, response, error)) << error;
    std::vector<Response> replay;
    ASSERT_TRUE(decodeBatchBody(response.body, replay, error));
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(replay[i].cached) << "part " << i;
        EXPECT_EQ(replay[i].body, parts[i].body);
    }
    EXPECT_EQ(harness.server->healthSnapshot().cache_hits, 3u);
}

TEST(ServeServerTest, UnknownExperimentAndBadArgsAnswerError)
{
    ServerOptions options;
    TestServer harness(options, "errors");
    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);

    Response response;
    std::string error;
    ASSERT_TRUE(client.run("no_such_experiment", {}, 0.0, response,
                           error))
        << error;
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.message.find("unknown experiment"),
              std::string::npos);

    ASSERT_TRUE(client.run("serve_test_echo", {"--rows", "abc"}, 0.0,
                           response, error))
        << error;
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.message.find("bad arguments"),
              std::string::npos);

    ASSERT_TRUE(client.run("serve_test_fail", {}, 0.0, response,
                           error))
        << error;
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.message.find("code 3"), std::string::npos);

    // The daemon survived all of it.
    ASSERT_TRUE(client.health(response, error)) << error;
    EXPECT_EQ(response.message, "HEALTHY");
}

TEST(ServeServerTest, MalformedFrameAnswersErrorNotDeath)
{
    ServerOptions options;
    TestServer harness(options, "malformed");

    std::string error;
    const int fd = connectUnix(harness.socketPath(), error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(sendFrame(fd, "complete garbage"));
    std::string payload;
    ASSERT_TRUE(recvFrame(fd, payload, error)) << error;
    Response response;
    ASSERT_TRUE(decodeResponse(payload, response, error)) << error;
    EXPECT_EQ(response.status, Status::Error);
    EXPECT_NE(response.message.find("bad request"), std::string::npos);

    // Same connection still serves well-formed requests.
    ASSERT_TRUE(sendFrame(
        fd, encodeRequest(runRequest("serve_test_echo",
                                     {"--rows", "1"}, 0.0, 1, 0))));
    ASSERT_TRUE(recvFrame(fd, payload, error)) << error;
    ASSERT_TRUE(decodeResponse(payload, response, error)) << error;
    EXPECT_EQ(response.status, Status::Ok);
    closeSocket(fd);
}

TEST(ServeServerTest, ConcurrentClientsMatchDirectRunsBitwise)
{
    // Three distinct configurations shared across eight clients:
    // plenty of duplicate content addresses, so the run must be
    // correct under concurrent admission AND the cache must replay
    // exact bytes.
    const std::vector<std::vector<std::string>> configs = {
        {"--rows", "2", "--scale", "0.5"},
        {"--rows", "5", "--scale", "0.25"},
        {"--rows", "8", "--scale", "1.5"},
    };
    std::vector<std::string> references;
    for (const auto &config : configs)
        references.push_back(directBody("serve_test_echo", config));

    ServerOptions options;
    options.workers = 4;
    options.queue_capacity = 64;
    TestServer harness(options, "stress");

    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 6;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            ClientOptions copt;
            copt.socket_path = harness.socketPath();
            copt.stream = static_cast<std::uint64_t>(c + 1);
            Client client(copt);
            for (int r = 0; r < kRequestsPerClient; ++r) {
                const std::size_t which =
                    static_cast<std::size_t>(c + r) % configs.size();
                Response response;
                std::string error;
                if (!client.run("serve_test_echo", configs[which],
                                0.0, response, error) ||
                    response.status != Status::Ok) {
                    failures.fetch_add(1);
                    continue;
                }
                if (response.body != references[which])
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);
    const auto snapshot = harness.server->healthSnapshot();
    EXPECT_EQ(snapshot.completed,
              static_cast<std::uint64_t>(kClients *
                                         kRequestsPerClient));
    // 48 requests over 3 content addresses: nearly all are replays.
    // (A burst of simultaneous first requests can each miss before
    // the first insert lands, so leave generous startup slack.)
    EXPECT_GE(snapshot.cache_hits, 30u);
}

TEST(ServeServerTest, QueueFullAnswersRetryLater)
{
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 1;
    TestServer harness(options, "queue_full");

    std::string error;
    // A: occupies the worker.
    const int fd_a = connectUnix(harness.socketPath(), error);
    ASSERT_GE(fd_a, 0) << error;
    ASSERT_TRUE(sendFrame(
        fd_a, encodeRequest(runRequest(
                  "serve_test_slow",
                  {"--sleep-ms", "500", "--id", "1"}, 0.0, 1, 0))));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // B: sits in the (capacity-1) queue.
    const int fd_b = connectUnix(harness.socketPath(), error);
    ASSERT_GE(fd_b, 0) << error;
    ASSERT_TRUE(sendFrame(
        fd_b, encodeRequest(runRequest(
                  "serve_test_slow",
                  {"--sleep-ms", "10", "--id", "2"}, 0.0, 2, 0))));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // C: no room — immediate RETRY_LATER, nothing queued or run.
    Response response;
    ASSERT_TRUE(rawRoundTrip(
        harness.socketPath(),
        runRequest("serve_test_echo", {"--rows", "1"}, 0.0, 3, 0),
        response));
    EXPECT_EQ(response.status, Status::RetryLater);
    EXPECT_EQ(response.message, "admission queue full");

    // A and B still complete normally.
    std::string payload;
    ASSERT_TRUE(recvFrame(fd_a, payload, error)) << error;
    ASSERT_TRUE(decodeResponse(payload, response, error)) << error;
    EXPECT_EQ(response.status, Status::Ok);
    ASSERT_TRUE(recvFrame(fd_b, payload, error)) << error;
    ASSERT_TRUE(decodeResponse(payload, response, error)) << error;
    EXPECT_EQ(response.status, Status::Ok);
    closeSocket(fd_a);
    closeSocket(fd_b);

    EXPECT_EQ(harness.server->healthSnapshot().retry_later, 1u);
}

TEST(ServeServerTest, ExpiredDeadlineIsRefusedAtPopTime)
{
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 8;
    TestServer harness(options, "deadline");

    std::string error;
    const int fd_a = connectUnix(harness.socketPath(), error);
    ASSERT_GE(fd_a, 0) << error;
    ASSERT_TRUE(sendFrame(
        fd_a, encodeRequest(runRequest(
                  "serve_test_slow",
                  {"--sleep-ms", "400", "--id", "10"}, 0.0, 1, 0))));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Queued behind a 400 ms run with a 50 ms budget: by the time the
    // worker pops it, the deadline has passed and it must NOT run.
    Response response;
    ASSERT_TRUE(rawRoundTrip(
        harness.socketPath(),
        runRequest("serve_test_echo", {"--rows", "7"}, 50.0, 2, 0),
        response));
    EXPECT_EQ(response.status, Status::DeadlineExpired);

    std::string payload;
    ASSERT_TRUE(recvFrame(fd_a, payload, error)) << error;
    ASSERT_TRUE(decodeResponse(payload, response, error)) << error;
    EXPECT_EQ(response.status, Status::Ok);
    closeSocket(fd_a);

    const auto snapshot = harness.server->healthSnapshot();
    EXPECT_EQ(snapshot.deadline_expired, 1u);
    // The expired request never executed: only the slow run completed.
    EXPECT_EQ(snapshot.completed, 1u);
}

TEST(ServeServerTest, HealthReportsQueueAndCacheStats)
{
    ServerOptions options;
    options.workers = 3;
    options.queue_capacity = 17;
    TestServer harness(options, "health");

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);
    Response response;
    std::string error;
    ASSERT_TRUE(client.run("serve_test_echo", {"--rows", "2"}, 0.0,
                           response, error))
        << error;
    ASSERT_TRUE(client.run("serve_test_echo", {"--rows", "2"}, 0.0,
                           response, error))
        << error;

    ASSERT_TRUE(client.health(response, error)) << error;
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.message, "HEALTHY");
    EXPECT_EQ(healthStat(response, "workers"), 3.0);
    EXPECT_EQ(healthStat(response, "queue_capacity"), 17.0);
    EXPECT_EQ(healthStat(response, "completed"), 2.0);
    EXPECT_EQ(healthStat(response, "cache_hits"), 1.0);
    EXPECT_EQ(healthStat(response, "draining"), 0.0);
}

TEST(ServeServerTest, HealthCarriesMetricsRegistryScrape)
{
    trace::MetricsRegistry registry;
    registry.counter("test.requests").add(4.0);
    registry.gauge("test.depth").set(7.0);
    auto &latency = registry.histogram("test.latency_ms");
    for (const double sample : {1.0, 2.0, 4.0, 8.0})
        latency.record(sample);

    ServerOptions options;
    options.metrics = &registry;
    TestServer harness(options, "health-metrics");

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);
    Response response;
    std::string error;
    ASSERT_TRUE(client.health(response, error)) << error;

    report::ResultStore store;
    ASSERT_TRUE(decodeStore(response.body, store, error)) << error;
    const auto *table = store.find("metrics");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->schema().columns().size(), 9u);

    bool saw_counter = false, saw_gauge = false, saw_histogram = false;
    for (const auto &row : table->rows()) {
        const std::string &name = row[0].asString();
        if (name == "test.requests") {
            saw_counter = true;
            EXPECT_EQ(row[1].asString(), "counter");
            EXPECT_DOUBLE_EQ(row[3].asDouble(), 4.0);
        } else if (name == "test.depth") {
            saw_gauge = true;
            EXPECT_EQ(row[1].asString(), "gauge");
            EXPECT_DOUBLE_EQ(row[3].asDouble(), 7.0);
        } else if (name == "test.latency_ms") {
            saw_histogram = true;
            EXPECT_EQ(row[1].asString(), "histogram");
            EXPECT_EQ(row[2].asUint(), 4u);       // count
            EXPECT_DOUBLE_EQ(row[4].asDouble(), 3.75);  // mean
            EXPECT_GT(row[7].asDouble(), 0.0);    // p99
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);
    EXPECT_TRUE(saw_histogram);

    // The health scrape also folds in the hot tier: serve bumps its
    // request counters through the registry, and the mirror adds the
    // fixed hot metric names on demand — nothing should throw when a
    // second scrape races more recording.
    ASSERT_TRUE(client.health(response, error)) << error;
}

TEST(ServeServerTest, ShutdownDrainsGracefully)
{
    ServerOptions options;
    TestServer harness(options, "drain");

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);
    Response response;
    std::string error;
    ASSERT_TRUE(client.run("serve_test_echo", {"--rows", "1"}, 0.0,
                           response, error))
        << error;
    EXPECT_EQ(response.status, Status::Ok);

    ASSERT_TRUE(client.shutdownServer(response, error)) << error;
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.message, "draining");

    harness.server->join();
    EXPECT_TRUE(harness.server->healthSnapshot().draining);

    // New connections are refused after drain.
    ClientOptions copt2;
    copt2.socket_path = harness.socketPath();
    copt2.max_retries = 0;
    Client late(copt2);
    EXPECT_FALSE(late.run("serve_test_echo", {"--rows", "1"}, 0.0,
                          response, error));
}

TEST(ServeServerTest, WarmRestartServesPersistedResultsFromDisk)
{
    const auto dir = tempDir("warm_restart");
    const std::vector<std::string> args = {"--rows", "6", "--scale",
                                           "0.75"};
    const std::string reference = directBody("serve_test_echo", args);

    {
        report::ArtifactSink sink(dir);
        ServerOptions options;
        options.sink = &sink;
        TestServer harness(options, "warm_restart_a");
        ClientOptions copt;
        copt.socket_path = harness.socketPath();
        Client client(copt);
        Response response;
        std::string error;
        ASSERT_TRUE(client.run("serve_test_echo", args, 0.0, response,
                               error))
            << error;
        EXPECT_EQ(response.status, Status::Ok);
        EXPECT_FALSE(response.cached);
    }

    // A fresh process (fresh server + sink) over the same artifact
    // root answers from the persisted cache without running anything.
    report::ArtifactSink sink(dir);
    ServerOptions options;
    options.sink = &sink;
    TestServer harness(options, "warm_restart_b");
    EXPECT_EQ(harness.server->warmLoaded(), 1u);

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    Client client(copt);
    Response response;
    std::string error;
    ASSERT_TRUE(client.run("serve_test_echo", args, 0.0, response,
                           error))
        << error;
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_TRUE(response.cached);
    EXPECT_EQ(response.body, reference);
}

// ---------------------------------------------------------------------
// conn_io fault determinism.

struct FaultRunOutcome
{
    std::vector<std::string> bodies;
    std::uint64_t read_drops = 0;
    std::uint64_t write_faults = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t completed = 0;
};

/** Drive one client (fixed stream, sequential requests) against a
 *  server with conn_io faults armed and @p workers workers. */
FaultRunOutcome
faultedRun(std::size_t workers, const std::string &name)
{
    fault::FaultPlan plan;
    plan.seed = 42;
    plan.setRate(fault::Site::ConnIo, 0.3);

    ServerOptions options;
    options.workers = workers;
    options.faults = plan;
    options.conn_retries = 1;
    TestServer harness(options, name);

    ClientOptions copt;
    copt.socket_path = harness.socketPath();
    copt.stream = 7;
    copt.max_retries = 16;
    copt.retry_backoff_ms = 1.0;
    Client client(copt);

    FaultRunOutcome outcome;
    for (int i = 0; i < 12; ++i) {
        Response response;
        std::string error;
        EXPECT_TRUE(client.run(
            "serve_test_echo",
            {"--rows", std::to_string(1 + i % 4)}, 0.0, response,
            error))
            << error;
        EXPECT_EQ(response.status, Status::Ok);
        outcome.bodies.push_back(response.body);
    }
    const auto snapshot = harness.server->healthSnapshot();
    outcome.read_drops = snapshot.conn_read_drops;
    outcome.write_faults = snapshot.conn_write_faults;
    outcome.quarantined = snapshot.conn_quarantined;
    outcome.completed = snapshot.completed;
    return outcome;
}

TEST(ServeFaultTest, ConnIoScheduleIsIndependentOfWorkerCount)
{
    const auto one = faultedRun(1, "faults_w1");
    const auto four = faultedRun(4, "faults_w4");

    // The client's request identities (stream, sequence, attempt) are
    // identical in both runs, so every injected read drop and write
    // fault fires at exactly the same points regardless of server
    // threading.
    EXPECT_EQ(one.read_drops, four.read_drops);
    EXPECT_EQ(one.write_faults, four.write_faults);
    EXPECT_EQ(one.quarantined, four.quarantined);
    EXPECT_EQ(one.completed, four.completed);
    ASSERT_EQ(one.bodies.size(), four.bodies.size());
    for (std::size_t i = 0; i < one.bodies.size(); ++i)
        EXPECT_EQ(one.bodies[i], four.bodies[i]) << "request " << i;

    // The plan actually fired: a 0.3 rate over ~12+ opportunities is
    // astronomically unlikely to stay silent.
    EXPECT_GT(one.read_drops + one.write_faults, 0u);
}

TEST(ServeFaultTest, RetriedRequestDrawsFreshSchedule)
{
    // The same (stream, sequence) at a different attempt must consult
    // a different deterministic schedule — that is what lets a client
    // retry through an injected drop.
    fault::FaultPlan plan;
    plan.seed = 42;
    plan.setRate(fault::Site::ConnIo, 0.5);

    bool differs = false;
    for (std::uint64_t seq = 0; seq < 16 && !differs; ++seq) {
        const auto base = runRequest("serve_test_echo", {}, 0.0, 7,
                                     seq);
        std::vector<bool> fired;
        for (int attempt = 0; attempt < 2; ++attempt) {
            fault::FaultInjector injector(
                plan,
                exec::seedCombine(exec::mix64(base.stream),
                                  base.sequence),
                attempt);
            fired.push_back(injector.fire(fault::Site::ConnIo, 0.0));
        }
        differs = fired[0] != fired[1];
    }
    EXPECT_TRUE(differs);
}

} // namespace
