/**
 * @file
 * Tests for the nominal-statistics machinery: catalog, rank/score
 * tables, linear algebra and PCA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/catalog.hh"
#include "stats/linalg.hh"
#include "stats/pca.hh"
#include "stats/stat_table.hh"
#include "support/rng.hh"
#include "workloads/registry.hh"

namespace capo::stats {
namespace {

TEST(CatalogTest, FullTableWithFiveGroups)
{
    EXPECT_EQ(catalog().size(), kMetricCount);
    int a = 0, b = 0, g = 0, p = 0, u = 0;
    for (const auto &info : catalog()) {
        switch (info.group) {
          case 'A': ++a; break;
          case 'B': ++b; break;
          case 'G': ++g; break;
          case 'P': ++p; break;
          case 'U': ++u; break;
          default: FAIL() << "bad group " << info.group;
        }
    }
    EXPECT_EQ(a, 5);
    EXPECT_EQ(b, 7);
    EXPECT_EQ(g, 12);
    EXPECT_EQ(p, 11);
    EXPECT_EQ(u, 13);
}

TEST(CatalogTest, CodeRoundTrip)
{
    for (const auto &info : catalog())
        EXPECT_EQ(metricFromCode(info.code), info.id);
    EXPECT_STREQ(metricCode(MetricId::ARA), "ARA");
}

TEST(StatTableTest, RankAndScoreLinearMapping)
{
    StatTable table;
    // Five workloads with distinct values: rank 1 (largest) scores
    // 10, rank 5 scores 0.
    const char *names[] = {"a", "b", "c", "d", "e"};
    for (int i = 0; i < 5; ++i)
        table.set(names[i], MetricId::ARA, 10.0 * (i + 1));
    auto rs = table.rankScore("e", MetricId::ARA);
    EXPECT_EQ(rs.rank, 1);
    EXPECT_EQ(rs.score, 10);
    rs = table.rankScore("a", MetricId::ARA);
    EXPECT_EQ(rs.rank, 5);
    EXPECT_EQ(rs.score, 0);
    rs = table.rankScore("c", MetricId::ARA);
    EXPECT_EQ(rs.rank, 3);
    EXPECT_EQ(rs.score, 5);
}

TEST(StatTableTest, TiesShareBestRank)
{
    StatTable table;
    table.set("a", MetricId::AOS, 24.0);
    table.set("b", MetricId::AOS, 24.0);
    table.set("c", MetricId::AOS, 16.0);
    EXPECT_EQ(table.rankScore("a", MetricId::AOS).rank, 1);
    EXPECT_EQ(table.rankScore("b", MetricId::AOS).rank, 1);
    EXPECT_EQ(table.rankScore("c", MetricId::AOS).rank, 3);
}

TEST(StatTableTest, PaperScoreExamples)
{
    // Reproduce score/rank pairs straight from the paper's appendix
    // using the shipped statistics.
    const auto table = shippedStats();

    // lusearch: ARA rank 1 -> score 10 (Section 5.1's example).
    auto rs = table.rankScore("lusearch", MetricId::ARA);
    EXPECT_EQ(rs.rank, 1);
    EXPECT_EQ(rs.score, 10);

    // avrora: GMD rank 22 (smallest heap) -> score 0.
    rs = table.rankScore("avrora", MetricId::GMD);
    EXPECT_EQ(rs.rank, 22);
    EXPECT_EQ(rs.score, 0);

    // h2: GMD rank 1 -> score 10 (largest default heap).
    rs = table.rankScore("h2", MetricId::GMD);
    EXPECT_EQ(rs.rank, 1);
    EXPECT_EQ(rs.score, 10);

    // avrora: PKP rank 1 (56 % kernel time, Table 2).
    rs = table.rankScore("avrora", MetricId::PKP);
    EXPECT_EQ(rs.rank, 1);
    EXPECT_EQ(rs.score, 10);

    // biojava: UIP rank 1 (highest IPC, Section 6.4).
    rs = table.rankScore("biojava", MetricId::UIP);
    EXPECT_EQ(rs.rank, 1);

    // h2o: UIP lowest -> score 0 (the appendix shows score 0).
    rs = table.rankScore("h2o", MetricId::UIP);
    EXPECT_EQ(rs.rank, 22);
    EXPECT_EQ(rs.score, 0);
}

TEST(StatTableTest, RangeSummaries)
{
    const auto table = shippedStats();
    const auto r = table.range(MetricId::GMD);
    EXPECT_EQ(r.available, 22);
    EXPECT_DOUBLE_EQ(r.min, 5.0);    // avrora
    EXPECT_DOUBLE_EQ(r.max, 681.0);  // h2
}

TEST(StatTableTest, AvailabilityMasks)
{
    const auto table = shippedStats();
    EXPECT_FALSE(table.get("tradebeans", MetricId::AOA).has_value());
    EXPECT_FALSE(table.get("fop", MetricId::GML).has_value());
    EXPECT_TRUE(table.get("h2", MetricId::GMV).has_value());
    EXPECT_TRUE(table.get("fop", MetricId::GMV).has_value());
    EXPECT_FALSE(table.get("avrora", MetricId::GMV).has_value());

    // tradebeans/tradesoap ship the fewest statistics; h2 the most
    // (paper Section 5.1, footnote 8).
    std::size_t fewest = kMetricCount, most = 0;
    std::string fewest_name, most_name;
    for (const auto &w : table.workloads()) {
        const auto n = table.availableMetrics(w).size();
        if (n < fewest) {
            fewest = n;
            fewest_name = w;
        }
        if (n > most) {
            most = n;
            most_name = w;
        }
    }
    EXPECT_EQ(most_name, "h2");
    EXPECT_TRUE(fewest_name == "tradebeans" ||
                fewest_name == "tradesoap");
    EXPECT_EQ(fewest, kMetricCount - 13);  // 35: no A/B, no GMV
}

TEST(LinalgTest, StandardizeColumns)
{
    Matrix m(3, 2);
    m.at(0, 0) = 1.0;
    m.at(1, 0) = 2.0;
    m.at(2, 0) = 3.0;
    m.at(0, 1) = 7.0;
    m.at(1, 1) = 7.0;
    m.at(2, 1) = 7.0;  // zero variance
    standardizeColumns(m);
    EXPECT_NEAR(m.at(0, 0) + m.at(1, 0) + m.at(2, 0), 0.0, 1e-12);
    EXPECT_NEAR(m.at(2, 0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(LinalgTest, CovarianceOfKnownData)
{
    Matrix m(3, 2);
    // Perfectly correlated columns.
    const double xs[] = {1.0, 2.0, 3.0};
    for (int r = 0; r < 3; ++r) {
        m.at(r, 0) = xs[r];
        m.at(r, 1) = 2.0 * xs[r];
    }
    const auto cov = covariance(m);
    EXPECT_NEAR(cov.at(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(cov.at(0, 1), 2.0, 1e-12);
    EXPECT_NEAR(cov.at(1, 1), 4.0, 1e-12);
}

TEST(LinalgTest, EigenOfDiagonalMatrix)
{
    Matrix m(3, 3);
    m.at(0, 0) = 1.0;
    m.at(1, 1) = 5.0;
    m.at(2, 2) = 3.0;
    const auto eig = symmetricEigen(m);
    EXPECT_NEAR(eig.values[0], 5.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(LinalgTest, EigenOfKnownSymmetricMatrix)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix m(2, 2);
    m.at(0, 0) = 2.0;
    m.at(0, 1) = 1.0;
    m.at(1, 0) = 1.0;
    m.at(1, 1) = 2.0;
    const auto eig = symmetricEigen(m);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
    // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(eig.vectors.at(0, 0)),
                std::fabs(eig.vectors.at(1, 0)), 1e-10);
}

TEST(LinalgTest, EigenReconstructsRandomSymmetricMatrix)
{
    support::Rng rng(21);
    const std::size_t n = 8;
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = rng.uniform(-1.0, 1.0);
            m.at(i, j) = v;
            m.at(j, i) = v;
        }
    }
    const auto eig = symmetricEigen(m);
    // Check A v_i = lambda_i v_i and orthonormality.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t r = 0; r < n; ++r) {
            double av = 0.0;
            for (std::size_t c = 0; c < n; ++c)
                av += m.at(r, c) * eig.vectors.at(c, i);
            ASSERT_NEAR(av, eig.values[i] * eig.vectors.at(r, i),
                        1e-8);
        }
        for (std::size_t j = 0; j < n; ++j) {
            double dot = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                dot += eig.vectors.at(k, i) * eig.vectors.at(k, j);
            ASSERT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
        }
    }
}

TEST(PcaTest, RecoversPlantedDirection)
{
    // Points along y = 2x with small noise: PC1 explains nearly all
    // variance.
    StatTable table;
    support::Rng rng(33);
    for (int i = 0; i < 12; ++i) {
        const double x = i + rng.gaussian(0.0, 0.01);
        table.set("w" + std::to_string(i), MetricId::ARA, x);
        table.set("w" + std::to_string(i), MetricId::GMD,
                  2.0 * i + rng.gaussian(0.0, 0.01));
    }
    const auto pca = runPca(table, 2);
    EXPECT_GT(pca.variance_fraction[0], 0.99);
}

TEST(PcaTest, SuitePcaUsesCompleteMetricsOnly)
{
    const auto table = shippedStats();
    const auto pca = runPca(table, 4);
    EXPECT_EQ(pca.workloads.size(), 22u);
    // All complete metrics: catalog minus A/B (tradebeans/tradesoap),
    // GML (fop, zxing) and GMV (3 workloads only). The paper's
    // analysis uses its 33 complete metrics; ours lands at 34 because
    // we model one more metric as complete (see EXPERIMENTS.md).
    EXPECT_EQ(pca.metrics.size(), kMetricCount - 14);

    // Variance fractions are descending and sum below 1.
    double total = 0.0;
    for (std::size_t c = 1; c < pca.variance_fraction.size(); ++c)
        EXPECT_LE(pca.variance_fraction[c],
                  pca.variance_fraction[c - 1] + 1e-12);
    for (double f : pca.variance_fraction)
        total += f;
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.4);  // the paper's top-4 explain > 50 %

    // Scores are centred per component.
    for (std::size_t c = 0; c < 4; ++c) {
        double sum = 0.0;
        for (const auto &row : pca.scores)
            sum += row[c];
        EXPECT_NEAR(sum, 0.0, 1e-6);
    }
}

TEST(PcaTest, DeterminantMetricsRankedByLoading)
{
    const auto table = shippedStats();
    const auto pca = runPca(table, 4);
    const auto determinant = pca.determinantMetrics(4);
    EXPECT_EQ(determinant.size(), pca.metrics.size());
    // The top twelve form the paper's Table 2 selection; just check
    // they are unique metrics.
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = i + 1; j < 12; ++j)
            EXPECT_NE(determinant[i], determinant[j]);
    }
}

} // namespace
} // namespace capo::stats
