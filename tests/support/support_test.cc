/**
 * @file
 * Unit tests for the support library (formatting, RNG, CSV, tables,
 * flags).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/csv.hh"
#include "support/flags.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strfmt.hh"
#include "support/table.hh"

namespace capo::support {
namespace {

TEST(LoggingTest, SimTimePrefixEmptyWithoutHook)
{
    EXPECT_EQ(simTimePrefix(), "");
}

TEST(LoggingTest, SimTimeHookFormatsSeconds)
{
    auto previous = setSimTimeHook([] { return 1.5e9; });
    EXPECT_EQ(simTimePrefix(), "[  1.500000s] ");
    setSimTimeHook([] { return 0.0; });
    EXPECT_EQ(simTimePrefix(), "[  0.000000s] ");
    setSimTimeHook(std::move(previous));
    EXPECT_EQ(simTimePrefix(), "");
}

TEST(LoggingTest, ScopedHookRestoresPrevious)
{
    ScopedSimTimeHook outer([] { return 2e9; });
    EXPECT_EQ(simTimePrefix(), "[  2.000000s] ");
    {
        ScopedSimTimeHook inner([] { return 3e9; });
        EXPECT_EQ(simTimePrefix(), "[  3.000000s] ");
    }
    EXPECT_EQ(simTimePrefix(), "[  2.000000s] ");
}

TEST(StrfmtTest, ConcatJoinsHeterogeneousValues)
{
    EXPECT_EQ(concat("a", 1, "-", 2.5), "a1-2.5");
    EXPECT_EQ(concat(), "");
}

TEST(StrfmtTest, FixedAndPercent)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-1.0, 0), "-1");
    EXPECT_EQ(percent(0.153, 1), "15.3 %");
}

TEST(StrfmtTest, HumanBytes)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(1536), "1.5 KB");
    EXPECT_EQ(humanBytes(12ull << 20, 0), "12 MB");
    EXPECT_EQ(humanBytes(3ull << 30), "3.0 GB");
}

TEST(StrfmtTest, HumanNanos)
{
    EXPECT_EQ(humanNanos(12.0), "12.0 ns");
    EXPECT_EQ(humanNanos(1.2e4), "12.0 us");
    EXPECT_EQ(humanNanos(3.25e6, 2), "3.25 ms");
    EXPECT_EQ(humanNanos(2.5e9), "2.5 s");
}

TEST(StrfmtTest, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, HeavyTailMeanAndSupport)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = rng.heavyTail(5.0, 2.2);
        ASSERT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 5.0, 0.35);
}

TEST(RngTest, UniformIntBounds)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.uniformInt(7), 7u);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable)
{
    Rng base(101);
    Rng f1 = base.fork(1);
    Rng f1_again = Rng(101).fork(1);
    Rng f2 = base.fork(2);
    EXPECT_EQ(f1.next(), f1_again.next());
    EXPECT_NE(f1.next(), f2.next());
}

TEST(CsvTest, WritesHeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.header({"a", "b"});
    csv.beginRow();
    csv.cell(std::string("x"));
    csv.cell(1.5);
    csv.endRow();
    csv.beginRow();
    csv.cell(std::int64_t{-2});
    csv.cell(std::string("hello, world"));
    csv.endRow();
    EXPECT_EQ(os.str(), "a,b\nx,1.5\n-2,\"hello, world\"\n");
    EXPECT_EQ(csv.rows(), 2u);
}

TEST(CsvTest, EscapesQuotesAndNewlines)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.header({"v"});
    csv.beginRow();
    csv.cell(std::string("say \"hi\"\nok"));
    csv.endRow();
    EXPECT_EQ(os.str(), "v\n\"say \"\"hi\"\"\nok\"\n");
}

TEST(TableTest, AlignsColumns)
{
    TextTable table;
    table.columns({"name", "value"},
                  {TextTable::Align::Left, TextTable::Align::Right});
    table.row({"x", "1"});
    table.row({"longer", "23"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("x           1"), std::string::npos);
    EXPECT_NE(out.find("longer     23"), std::string::npos);
}

TEST(TableTest, SeparatorRendersRule)
{
    TextTable table;
    table.columns({"a"});
    table.row({"1"});
    table.separator();
    table.row({"2"});
    const std::string out = table.str();
    // Header rule + explicit separator.
    std::size_t count = 0, pos = 0;
    while ((pos = out.find('-', pos)) != std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_GE(count, 2u);
}

TEST(FlagsTest, ParsesAllForms)
{
    Flags flags("test");
    flags.addString("mode", "fast", "mode to use");
    flags.addInt("count", 3, "how many");
    flags.addDouble("scale", 1.5, "scaling");
    flags.addBool("verbose", false, "chatty");

    const char *argv[] = {"prog",   "--mode=slow", "--count", "7",
                          "--verbose", "positional"};
    flags.parse(6, argv);

    EXPECT_EQ(flags.getString("mode"), "slow");
    EXPECT_EQ(flags.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(flags.getDouble("scale"), 1.5);
    EXPECT_TRUE(flags.getBool("verbose"));
    ASSERT_EQ(flags.positionals().size(), 1u);
    EXPECT_EQ(flags.positionals()[0], "positional");
}

TEST(FlagsTest, SingleDashFormsForDeclaredNames)
{
    Flags flags("test");
    flags.addInt("n", 5, "iterations");
    flags.addBool("p", false, "print stats");
    const char *argv[] = {"prog", "-n", "3", "-p", "-42", "bench"};
    flags.parse(6, argv);
    EXPECT_EQ(flags.getInt("n"), 3);
    EXPECT_TRUE(flags.getBool("p"));
    // Undeclared single-dash tokens stay positional (negative numbers).
    ASSERT_EQ(flags.positionals().size(), 2u);
    EXPECT_EQ(flags.positionals()[0], "-42");
    EXPECT_EQ(flags.positionals()[1], "bench");
}

TEST(FlagsTest, UsageMentionsFlags)
{
    Flags flags("demo tool");
    flags.addInt("n", 1, "iterations");
    const std::string usage = flags.usage();
    EXPECT_NE(usage.find("demo tool"), std::string::npos);
    EXPECT_NE(usage.find("--n"), std::string::npos);
    EXPECT_NE(usage.find("iterations"), std::string::npos);
}

} // namespace
} // namespace capo::support
