/**
 * @file
 * Tests for the ASCII chart renderer and the GC log formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/gc_log.hh"
#include "support/ascii_chart.hh"

namespace capo {
namespace {

TEST(AsciiChartTest, RendersFrameLegendAndLabels)
{
    support::AsciiChart chart(32, 8);
    chart.setTitle("demo chart");
    chart.setXLabel("heap");
    chart.setYLabel("overhead");
    chart.addSeries("alpha", {{1.0, 1.0}, {2.0, 2.0}, {3.0, 1.5}});
    chart.addSeries("beta", {{1.0, 2.0}, {3.0, 1.0}});
    const std::string out = chart.render();
    EXPECT_NE(out.find("demo chart"), std::string::npos);
    EXPECT_NE(out.find("*=alpha"), std::string::npos);
    EXPECT_NE(out.find("o=beta"), std::string::npos);
    EXPECT_NE(out.find("heap"), std::string::npos);
    EXPECT_NE(out.find("overhead"), std::string::npos);
    // Eight grid rows, each framed by '|'.
    std::size_t bars = 0, pos = 0;
    while ((pos = out.find('|', pos)) != std::string::npos) {
        ++bars;
        ++pos;
    }
    EXPECT_EQ(bars, 8u);
}

TEST(AsciiChartTest, MarkersLandAtExpectedCorners)
{
    support::AsciiChart chart(20, 5);
    chart.setConnect(false);
    chart.addSeries("s", {{0.0, 0.0}, {1.0, 1.0}});
    const std::string out = chart.render();

    // Split the grid rows out of the render.
    std::vector<std::string> rows;
    std::stringstream ss(out);
    std::string line;
    while (std::getline(ss, line)) {
        const auto bar = line.find('|');
        if (bar != std::string::npos)
            rows.push_back(line.substr(bar + 1));
    }
    ASSERT_EQ(rows.size(), 5u);
    // (0,0) is bottom-left; (1,1) is top-right.
    EXPECT_EQ(rows.back().front(), '*');
    EXPECT_EQ(rows.front().back(), '*');
}

TEST(AsciiChartTest, LogScaleHandlesDecades)
{
    support::AsciiChart chart(20, 7);
    chart.setLogY(true);
    chart.addSeries("s", {{0.0, 0.1}, {1.0, 100.0}});
    const std::string out = chart.render();
    // y labels show the extremes.
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("0.1"), std::string::npos);
}

TEST(AsciiChartTest, ExplicitRangeClipsOutliers)
{
    support::AsciiChart chart(20, 5);
    chart.setYRange(1.0, 2.0);
    chart.addSeries("s", {{0.0, 1.5}, {1.0, 50.0}});  // 50 clipped
    const std::string out = chart.render();
    EXPECT_NE(out.find('*'), std::string::npos);  // in-range point drawn
}

runtime::CycleRecord
cycle(double begin_s, runtime::GcPhase kind, double post_mb,
      double reclaimed_mb)
{
    runtime::CycleRecord c;
    c.begin = begin_s * 1e9;
    c.end = begin_s * 1e9 + 2e6;  // 2 ms
    c.kind = kind;
    c.post_gc_bytes = post_mb * 1024 * 1024;
    c.reclaimed = reclaimed_mb * 1024 * 1024;
    return c;
}

TEST(GcLogTest, FormatsHotspotStyleLines)
{
    const auto line = runtime::formatCycleLine(
        cycle(0.123, runtime::GcPhase::YoungPause, 3.0, 9.0), 5,
        64.0 * 1024 * 1024);
    EXPECT_EQ(line,
              "[0.123s] GC(5) Pause Young (Allocation) "
              "12.0M->3.0M(64.0M) 2.000ms");
}

TEST(GcLogTest, EmitsOneLinePerCycle)
{
    runtime::GcEventLog log;
    log.recordCycle(cycle(0.1, runtime::GcPhase::YoungPause, 3, 9));
    log.recordCycle(cycle(0.2, runtime::GcPhase::Concurrent, 4, 20));
    log.recordCycle(cycle(0.3, runtime::GcPhase::FullPause, 2, 30));
    std::ostringstream out;
    EXPECT_EQ(runtime::formatGcLog(log, 64.0 * 1024 * 1024, out), 3u);
    EXPECT_NE(out.str().find("Concurrent Cycle"), std::string::npos);
    EXPECT_NE(out.str().find("Pause Full"), std::string::npos);
    EXPECT_NE(out.str().find("GC(2)"), std::string::npos);
}

} // namespace
} // namespace capo
