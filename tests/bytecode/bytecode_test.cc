/**
 * @file
 * Tests for the bytecode-instrumentation substrate: program
 * synthesis, the instrumenting interpreter, the object-size model,
 * and end-to-end A/B statistic measurement.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bytecode/characterize.hh"
#include "metrics/summary.hh"
#include "workloads/registry.hh"

namespace capo::bytecode {
namespace {

Program::Profile
simpleProfile()
{
    Program::Profile profile;
    profile.p_aaload = 0.05;
    profile.p_aastore = 0.01;
    profile.p_getfield = 0.10;
    profile.p_putfield = 0.03;
    profile.p_new = 0.02;
    profile.unique_bytecodes = 5000;
    profile.unique_methods = 50;
    profile.hot_fraction = 0.8;
    return profile;
}

TEST(ProgramTest, SynthesisHonoursStructure)
{
    const auto program =
        Program::synthesize(simpleProfile(), support::Rng(1));
    EXPECT_EQ(program.methods().size(), 50u);
    EXPECT_EQ(program.hotMethods().size(), 5u);
    EXPECT_EQ(program.coldMethods().size(), 45u);
    // Static size lands near the requested unique-bytecode budget.
    EXPECT_NEAR(static_cast<double>(program.instructionCount()), 5000.0,
                5000.0 * 0.15);
    // Every method terminates with Return.
    for (const auto &method : program.methods())
        EXPECT_EQ(method.body.back().op, Opcode::Return);
}

TEST(ProgramTest, SynthesisIsDeterministic)
{
    const auto a = Program::synthesize(simpleProfile(), support::Rng(2));
    const auto b = Program::synthesize(simpleProfile(), support::Rng(2));
    ASSERT_EQ(a.methods().size(), b.methods().size());
    for (std::size_t i = 0; i < a.methods().size(); ++i) {
        ASSERT_EQ(a.methods()[i].body.size(), b.methods()[i].body.size());
        for (std::size_t k = 0; k < a.methods()[i].body.size(); ++k)
            ASSERT_EQ(a.methods()[i].body[k].op,
                      b.methods()[i].body[k].op);
    }
}

TEST(InterpreterTest, ExecutesTheRequestedBudget)
{
    const auto program =
        Program::synthesize(simpleProfile(), support::Rng(3));
    ObjectSizeModel sizes(16, 32, 64, 48);
    Interpreter interp(program, sizes, support::Rng(4));
    const auto report = interp.run(1'000'000);
    EXPECT_GE(report.instructions, 1'000'000u);
    EXPECT_LE(report.instructions, 1'000'100u);
}

TEST(InterpreterTest, OpcodeMixTracksProfile)
{
    const auto profile = simpleProfile();
    const auto program = Program::synthesize(profile, support::Rng(5));
    ObjectSizeModel sizes(16, 32, 64, 48);
    Interpreter interp(program, sizes, support::Rng(6));
    const auto report = interp.run(2'000'000);

    auto fraction = [&](Opcode op) {
        return static_cast<double>(report.count(op)) /
               report.instructions;
    };
    EXPECT_NEAR(fraction(Opcode::GetField), profile.p_getfield, 0.03);
    EXPECT_NEAR(fraction(Opcode::AALoad), profile.p_aaload, 0.02);
    EXPECT_NEAR(fraction(Opcode::New), profile.p_new, 0.01);
}

TEST(InterpreterTest, HotFractionTracksProfile)
{
    auto profile = simpleProfile();
    profile.hot_fraction = 0.9;
    const auto program = Program::synthesize(profile, support::Rng(7));
    ObjectSizeModel sizes(16, 32, 64, 48);
    Interpreter interp(program, sizes, support::Rng(8));
    const auto report = interp.run(2'000'000);
    EXPECT_NEAR(report.hotFraction(), 0.9, 0.10);
}

TEST(InterpreterTest, UniqueCountsAreBoundedByStaticProgram)
{
    const auto program =
        Program::synthesize(simpleProfile(), support::Rng(9));
    ObjectSizeModel sizes(16, 32, 64, 48);
    Interpreter interp(program, sizes, support::Rng(10));
    const auto report = interp.run(5'000'000);
    EXPECT_LE(report.unique_instructions, program.instructionCount());
    EXPECT_LE(report.unique_methods, program.methods().size());
    // A long run touches most of the program.
    EXPECT_GT(report.unique_instructions,
              program.instructionCount() / 2);
}

TEST(ObjectSizeModelTest, QuantilesAndMeanReproduce)
{
    ObjectSizeModel model(24, 32, 88, 75);  // lusearch's demographics
    support::Rng rng(11);
    std::vector<double> sample;
    for (int i = 0; i < 200000; ++i)
        sample.push_back(model.sample(rng));
    std::sort(sample.begin(), sample.end());
    EXPECT_NEAR(metrics::quantileSorted(sample, 0.10), 24.0, 2.0);
    EXPECT_NEAR(metrics::quantileSorted(sample, 0.50), 32.0, 2.0);
    EXPECT_NEAR(metrics::quantileSorted(sample, 0.90), 88.0, 3.0);
    EXPECT_NEAR(metrics::mean(sample), 75.0, 75.0 * 0.08);
}

TEST(ObjectSizeModelTest, DegenerateTailStaysAtP90)
{
    // Mean below the body mean: tail collapses to p90.
    ObjectSizeModel model(24, 32, 48, 33);
    support::Rng rng(12);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LE(model.sample(rng), 48.0 + 1e-9);
}

class BytecodeRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BytecodeRoundTrip, MeasuredStatsApproximateShipped)
{
    const auto &workload = workloads::byName(GetParam());
    CharacterizeOptions options;
    options.instruction_budget = 8'000'000;
    const auto measured = characterizeBytecode(workload, options);
    const auto profile = Program::profileFor(workload);

    // Demographics: quantiles nearly exact, since they parameterize
    // the sampler (a few bytes of slack where quantiles coincide and
    // the sample interpolates across a mass boundary).
    auto near = [](double got, double want, double rel) {
        EXPECT_NEAR(got, want, std::max(want * rel, 12.0));
    };
    near(measured.aos, workload.alloc.aos, 0.15);
    near(measured.aom, workload.alloc.aom, 0.15);
    near(measured.aoa, workload.alloc.aoa, 0.25);
    if (workload.alloc.aoa < 1.5 * workload.alloc.aol) {
        near(measured.aol, workload.alloc.aol, 0.15);
    } else {
        // Heavy-tailed demographics (luindex: mean 211 over p90 88):
        // the p90 order statistic at the body/tail density
        // discontinuity is upward-noisy for any finite sample — the
        // same effect a real instrumentation run smooths out with
        // millions of objects. Bound it loosely.
        EXPECT_GE(measured.aol, workload.alloc.aol * 0.8);
        EXPECT_LE(measured.aol, workload.alloc.aoa * 2.5);
    }

    // Opcode rates: a single synthesized program realization carries
    // site-count noise of ~1/sqrt(sites), so the tolerance follows
    // the number of static sites the rate implies.
    const double total = profile.unique_bytecodes;
    auto check_rate = [&](double got, double want, double p) {
        if (want < 5.0)
            return;
        const double sites = std::max(p * total, 1.0);
        const double rel = sites >= 400.0 ? 0.30 : 0.6;
        EXPECT_NEAR(got, want, want * rel)
            << "sites ~" << sites;
    };
    check_rate(measured.bgf, workload.bytecode.bgf,
               profile.p_getfield);
    check_rate(measured.bpf, workload.bytecode.bpf,
               profile.p_putfield);
    check_rate(measured.bal, workload.bytecode.bal, profile.p_aaload);
    check_rate(measured.ara, workload.alloc.ara, profile.p_new);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BytecodeRoundTrip,
                         ::testing::Values("lusearch", "h2", "pmd",
                                           "fop", "luindex"));

TEST(BytecodeCharacterizeTest, FillsStatTable)
{
    const auto &fop = workloads::byName("fop");
    CharacterizeOptions options;
    options.instruction_budget = 2'000'000;
    const auto measured = characterizeBytecode(fop, options);
    stats::StatTable table;
    fillBytecodeStats(fop, measured, table);
    EXPECT_TRUE(table.get("fop", stats::MetricId::ARA).has_value());
    EXPECT_TRUE(table.get("fop", stats::MetricId::BUB).has_value());
}

} // namespace
} // namespace capo::bytecode
