/**
 * @file
 * Tests for the workload registry, descriptors and plan building.
 */

#include <gtest/gtest.h>

#include "counters/machine.hh"
#include "workloads/plans.hh"
#include "workloads/registry.hh"

namespace capo::workloads {
namespace {

TEST(RegistryTest, SuiteHasTwentyTwoWorkloads)
{
    EXPECT_EQ(suite().size(), 22u);
    EXPECT_EQ(names().size(), 22u);
}

TEST(RegistryTest, NineLatencySensitiveWorkloads)
{
    const auto latency = latencySensitive();
    ASSERT_EQ(latency.size(), 9u);
    std::vector<std::string> expected = {
        "cassandra", "h2",     "jme",        "kafka",     "lusearch",
        "spring",    "tomcat", "tradebeans", "tradesoap",
    };
    std::vector<std::string> got;
    for (const auto *d : latency)
        got.push_back(d->name);
    EXPECT_EQ(got, expected);
}

TEST(RegistryTest, EightNewWorkloads)
{
    int fresh = 0;
    for (const auto &d : suite())
        fresh += d.is_new;
    // biojava, cassandra, graphchi, h2o, jme, kafka, spring, zxing.
    EXPECT_EQ(fresh, 8);
}

TEST(RegistryTest, LookupByName)
{
    EXPECT_EQ(byName("lusearch").name, "lusearch");
    EXPECT_TRUE(contains("h2"));
    EXPECT_FALSE(contains("quake"));
}

TEST(RegistryTest, MinHeapRangeMatchesPaper)
{
    // "minimum heap sizes from 5 MB to 20 GB" — avrora default 5 MB,
    // h2 vlarge 20.6 GB.
    EXPECT_DOUBLE_EQ(byName("avrora").gc.gmd_mb, 5.0);
    EXPECT_DOUBLE_EQ(byName("h2").gc.gmd_mb, 681.0);
    EXPECT_DOUBLE_EQ(byName("h2").gc.gmv_mb, 20641.0);
}

TEST(RegistryTest, HeadlineStatisticsMatchPaperText)
{
    // lusearch has the suite's top allocation rate (Section 5.1).
    const auto &lusearch = byName("lusearch");
    EXPECT_DOUBLE_EQ(lusearch.alloc.ara, 23556.0);
    for (const auto &d : suite()) {
        if (available(d.alloc.ara)) {
            EXPECT_LE(d.alloc.ara, lusearch.alloc.ara);
        }
    }
    // Section 6.4's IPC extremes: biojava and jython high, h2o and
    // xalan lowest.
    EXPECT_GT(byName("biojava").uarch.uip, 400.0);
    EXPECT_GT(byName("jython").uarch.uip, 250.0);
    EXPECT_LT(byName("h2o").uarch.uip, 100.0);
    EXPECT_LT(byName("xalan").uarch.uip, 100.0);
}

TEST(RegistryTest, TradeWorkloadsLackInstrumentationStats)
{
    for (const char *name : {"tradebeans", "tradesoap"}) {
        const auto &d = byName(name);
        EXPECT_FALSE(available(d.alloc.aoa)) << name;
        EXPECT_FALSE(available(d.alloc.ara)) << name;
        EXPECT_FALSE(available(d.bytecode.bub)) << name;
        // But the simulation still has an allocation-rate model.
        EXPECT_GT(d.allocPerIteration(), 0.0) << name;
    }
}

TEST(DescriptorTest, DerivedQuantitiesAreConsistent)
{
    const auto &h2 = byName("h2");
    // 24 % parallel efficiency on 32 threads -> width ~7.7.
    EXPECT_NEAR(h2.effectiveParallelism(), 0.24 * 32.0, 1e-9);
    // Work = PET seconds at that width.
    EXPECT_NEAR(h2.workPerIteration(),
                2.0 * 1e9 * h2.effectiveParallelism(), 1.0);
    // Allocation = ARA x PET.
    EXPECT_NEAR(h2.allocPerIteration(), 11858.0 * 1e6 * 2.0, 1.0);
    // Footprint = GMU / GMD.
    EXPECT_NEAR(h2.pointerFootprint(), 903.0 / 681.0, 1e-9);
}

TEST(DescriptorTest, FootprintClampedToAtLeastOne)
{
    // cassandra's GMU < GMD (the paper's own data): clamp at 1.
    EXPECT_DOUBLE_EQ(byName("cassandra").pointerFootprint(), 1.0);
}

TEST(DescriptorTest, SurvivorFractionFallsWithTurnover)
{
    EXPECT_LT(byName("lusearch").survivor_fraction,
              byName("batik").survivor_fraction);
    for (const auto &d : suite()) {
        EXPECT_GE(d.survivor_fraction, 0.003);
        EXPECT_LE(d.survivor_fraction, 0.10);
    }
}

TEST(PlansTest, SizeAvailability)
{
    EXPECT_TRUE(sizeAvailable(byName("h2"), SizeConfig::VLarge));
    EXPECT_FALSE(sizeAvailable(byName("avrora"), SizeConfig::VLarge));
    EXPECT_FALSE(sizeAvailable(byName("fop"), SizeConfig::Large));
    EXPECT_TRUE(sizeAvailable(byName("fop"), SizeConfig::Default));
    EXPECT_EQ(std::string(sizeName(SizeConfig::VLarge)), "vlarge");
}

TEST(PlansTest, DefaultSetupMatchesDescriptor)
{
    const auto &d = byName("lusearch");
    const auto setup = makeSetup(d, counters::MachineConfig::baseline(),
                                 SizeConfig::Default, 5);
    EXPECT_EQ(setup.plan.iterations, 5);
    EXPECT_NEAR(setup.plan.width, d.effectiveParallelism(), 1e-9);
    EXPECT_NEAR(setup.plan.work_per_iteration, d.workPerIteration(),
                1.0);
    EXPECT_NEAR(setup.live.base_bytes, d.liveBytes(), 1.0);
    EXPECT_NEAR(setup.reference_min_heap_bytes,
                19.0 * 1024 * 1024, 1.0);
    // Latency-sensitive workloads get finer chunking.
    EXPECT_EQ(setup.plan.min_chunks, 256);
}

TEST(PlansTest, SizesScaleData)
{
    const auto &d = byName("h2");
    const auto def = makeSetup(d, counters::MachineConfig::baseline(),
                               SizeConfig::Default, 2);
    const auto large = makeSetup(d, counters::MachineConfig::baseline(),
                                 SizeConfig::Large, 2);
    const double k = d.gc.gml_mb / d.gc.gmd_mb;
    EXPECT_NEAR(large.live.base_bytes, def.live.base_bytes * k, 1.0);
    EXPECT_NEAR(large.plan.alloc_per_iteration,
                def.plan.alloc_per_iteration * k, 1.0);
    EXPECT_GT(large.plan.work_per_iteration,
              def.plan.work_per_iteration);
}

TEST(PlansTest, WarmupCurveConvergesByPwu)
{
    for (const auto &d : suite()) {
        const auto setup = makeSetup(
            d, counters::MachineConfig::baseline(), SizeConfig::Default,
            5);
        const auto &curve = setup.plan.warmup_multipliers;
        ASSERT_GE(curve.size(), 2u);
        // Monotone non-increasing toward 1.0.
        for (std::size_t i = 1; i < curve.size(); ++i)
            ASSERT_LE(curve[i], curve[i - 1] + 1e-12) << d.name;
        EXPECT_DOUBLE_EQ(curve.back(), 1.0);
        // Within 1.5 % of peak by iteration PWU.
        const auto idx = std::min<std::size_t>(
            static_cast<std::size_t>(d.perf.pwu) - 1,
            curve.size() - 1);
        EXPECT_LE(curve[idx], 1.016) << d.name;
    }
}

TEST(PlansTest, MachineConfigStretchesWork)
{
    const auto &d = byName("eclipse");  // strongly compiler-sensitive
    counters::MachineConfig interp;
    interp.compiler = counters::MachineConfig::Compiler::Interpreter;
    const auto base = makeSetup(d, counters::MachineConfig::baseline(),
                                SizeConfig::Default, 2);
    const auto slow = makeSetup(d, interp, SizeConfig::Default, 2);
    EXPECT_NEAR(slow.plan.work_per_iteration,
                base.plan.work_per_iteration * (1.0 + d.perf.pin / 100),
                base.plan.work_per_iteration * 1e-9);
}

} // namespace
} // namespace capo::workloads
